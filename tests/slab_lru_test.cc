// Focused tests for the slab size-class accounting and exact LRU
// ordering/eviction behaviour of the LocalStore.
#include <gtest/gtest.h>

#include "store/local_store.h"
#include "store/slab.h"

namespace sedna::store {
namespace {

// ---- SlabAccounting --------------------------------------------------------

TEST(Slab, ClassSizesGrowByFactor) {
  SlabAccounting slabs;
  std::size_t prev = 0;
  for (std::size_t c = 0; c < SlabAccounting::kNumClasses; ++c) {
    const std::size_t size = slabs.chunk_size(c);
    EXPECT_GT(size, prev);
    if (c > 0) {
      // growth factor 1.25, allowing for integer truncation
      EXPECT_LE(size, prev + prev / 3);
    }
    prev = size;
  }
  EXPECT_EQ(slabs.chunk_size(0), SlabAccounting::kMinChunk);
}

TEST(Slab, ClassForPicksSmallestFit) {
  SlabAccounting slabs;
  EXPECT_EQ(slabs.class_for(1), 0u);
  EXPECT_EQ(slabs.class_for(SlabAccounting::kMinChunk), 0u);
  EXPECT_EQ(slabs.class_for(SlabAccounting::kMinChunk + 1), 1u);
  for (std::size_t c = 0; c + 1 < SlabAccounting::kNumClasses; ++c) {
    // A chunk-sized request maps exactly to its class; one byte more
    // spills into the next.
    EXPECT_EQ(slabs.class_for(slabs.chunk_size(c)), c);
    EXPECT_EQ(slabs.class_for(slabs.chunk_size(c) + 1), c + 1);
  }
}

TEST(Slab, OversizedLandsInLastClass) {
  SlabAccounting slabs;
  EXPECT_EQ(slabs.class_for(1u << 30),
            SlabAccounting::kNumClasses - 1);
}

TEST(Slab, ChargeReleaseBalances) {
  SlabAccounting slabs;
  slabs.charge(100);
  slabs.charge(100);
  slabs.charge(5000);
  const auto cls_small = slabs.class_for(100);
  const auto cls_big = slabs.class_for(5000);
  EXPECT_EQ(slabs.used_chunks(cls_small), 2u);
  EXPECT_EQ(slabs.used_chunks(cls_big), 1u);
  EXPECT_GT(slabs.charged_bytes(), 5200u);  // chunk >= payload

  slabs.release(100);
  slabs.release(5000);
  EXPECT_EQ(slabs.used_chunks(cls_small), 1u);
  EXPECT_EQ(slabs.used_chunks(cls_big), 0u);
  slabs.release(100);
  EXPECT_EQ(slabs.charged_bytes(), 0u);
}

TEST(Slab, ReleaseOfUnchargedIsSafe) {
  SlabAccounting slabs;
  slabs.release(100);  // must not underflow
  EXPECT_EQ(slabs.charged_bytes(), 0u);
  EXPECT_EQ(slabs.used_chunks(slabs.class_for(100)), 0u);
}

TEST(Slab, ChargedBytesReflectInternalFragmentation) {
  SlabAccounting slabs;
  // A 65-byte item occupies an 80-byte chunk (64 * 1.25): the accounting
  // must capture that overhead, as real memcached's does.
  slabs.charge(65);
  EXPECT_GE(slabs.charged_bytes(), 65u);
  EXPECT_EQ(slabs.charged_bytes(),
            slabs.chunk_size(slabs.class_for(65)));
}

// ---- exact LRU behaviour ------------------------------------------------------

LocalStoreConfig one_shard() {
  LocalStoreConfig cfg;
  cfg.shards = 1;  // deterministic LRU order needs a single list
  return cfg;
}

TEST(Lru, EvictionFollowsExactAccessOrder) {
  LocalStoreConfig cfg = one_shard();
  LocalStore probe(cfg);
  // Measure per-item cost to size a budget for exactly ~4 items.
  probe.set("sample-0", std::string(100, 'v'));
  const std::size_t per_item = probe.stats().bytes;
  cfg.memory_budget_bytes = per_item * 4 + per_item / 2;

  LocalStore store(cfg);
  for (int i = 0; i < 4; ++i) {
    store.set("sample-" + std::to_string(i), std::string(100, 'v'));
  }
  ASSERT_EQ(store.size(), 4u);
  // Touch 0 and 1 so 2 becomes the coldest.
  store.get("sample-0");
  store.get("sample-1");
  store.set("sample-4", std::string(100, 'v'));  // forces one eviction
  EXPECT_FALSE(store.get("sample-2").ok());  // the coldest went
  EXPECT_TRUE(store.get("sample-0").ok());
  EXPECT_TRUE(store.get("sample-1").ok());
  EXPECT_TRUE(store.get("sample-3").ok());
  EXPECT_TRUE(store.get("sample-4").ok());
}

TEST(Lru, WritesAlsoRefreshRecency) {
  LocalStoreConfig cfg = one_shard();
  LocalStore probe(cfg);
  probe.set("sample-0", std::string(100, 'v'));
  const std::size_t per_item = probe.stats().bytes;
  cfg.memory_budget_bytes = per_item * 3 + per_item / 2;

  LocalStore store(cfg);
  store.set("a", std::string(100, 'v'));
  store.set("b", std::string(100, 'v'));
  store.set("c", std::string(100, 'v'));
  store.set("a", std::string(100, 'w'));  // rewrite refreshes 'a'
  store.set("d", std::string(100, 'v'));  // evicts 'b', the coldest
  EXPECT_TRUE(store.get("a").ok());
  EXPECT_FALSE(store.get("b").ok());
}

TEST(Lru, MultiEvictionWhenOversizedItemArrives) {
  LocalStoreConfig cfg = one_shard();
  LocalStore probe(cfg);
  probe.set("sample-0", std::string(100, 'v'));
  const std::size_t per_item = probe.stats().bytes;
  cfg.memory_budget_bytes = per_item * 5;

  LocalStore store(cfg);
  for (int i = 0; i < 5; ++i) {
    store.set("small-" + std::to_string(i), std::string(100, 'v'));
  }
  // One item worth three slots of budget evicts several cold entries.
  store.set("jumbo", std::string(300, 'v'));
  EXPECT_TRUE(store.get("jumbo").ok());
  EXPECT_GE(store.stats().evictions, 2u);
  EXPECT_LE(store.stats().bytes, cfg.memory_budget_bytes);
}

TEST(Lru, GetsAndReadAllAlsoTouch) {
  LocalStoreConfig cfg = one_shard();
  LocalStore probe(cfg);
  probe.write_all("sample", 1, std::string(100, 'v'), 1);
  const std::size_t per_item = probe.stats().bytes;
  cfg.memory_budget_bytes = per_item * 3 + per_item / 2;

  LocalStore store(cfg);
  store.write_all("x", 1, std::string(100, 'v'), 1);
  store.write_all("y", 1, std::string(100, 'v'), 2);
  store.write_all("z", 1, std::string(100, 'v'), 3);
  ASSERT_TRUE(store.read_all("x").ok());  // refresh x
  store.write_all("w", 1, std::string(100, 'v'), 4);
  EXPECT_TRUE(store.read_all("x").ok());
  EXPECT_FALSE(store.read_all("y").ok());  // y was the coldest
}

TEST(Lru, BudgetSplitsAcrossShards) {
  LocalStoreConfig cfg;
  cfg.shards = 4;
  cfg.memory_budget_bytes = 64 * 1024;
  LocalStore store(cfg);
  for (int i = 0; i < 4000; ++i) {
    store.set("spread-" + std::to_string(i), std::string(64, 'v'));
  }
  // Total stays under budget even though eviction decisions are per-shard.
  EXPECT_LE(store.stats().bytes, 64u * 1024u);
  EXPECT_GT(store.size(), 100u);
}

}  // namespace
}  // namespace sedna::store
