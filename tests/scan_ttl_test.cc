// Tests for the cluster scan (scatter-gather prefix enumeration) and the
// TTL path through the replicated write pipeline.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

Result<SednaClient::ScanResult> scan_sync(SednaCluster& cluster,
                                          SednaClient& client,
                                          const std::string& prefix,
                                          std::uint32_t limit = 1000) {
  std::optional<Result<SednaClient::ScanResult>> out;
  client.scan(prefix,
              [&](const Result<SednaClient::ScanResult>& r) { out = r; },
              limit);
  cluster.run_until([&] { return out.has_value(); });
  if (!out.has_value()) return Status::Timeout();
  return *out;
}

TEST(Scan, FindsAllKeysUnderPrefixExactlyOnce) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(cluster.write_latest(client,
                                     "users/profiles/u" + std::to_string(i),
                                     "v").ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.write_latest(client,
                                     "other/data/o" + std::to_string(i),
                                     "v").ok());
  }
  cluster.run_for(sim_ms(50));

  auto result = scan_sync(cluster, client, "users/");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  // Exactly the 80 matching keys, despite each living on 3 replicas.
  EXPECT_EQ(result->keys.size(), 80u);
  EXPECT_FALSE(result->truncated);
  EXPECT_TRUE(std::is_sorted(result->keys.begin(), result->keys.end()));
  for (const auto& key : result->keys) {
    EXPECT_EQ(key.substr(0, 6), "users/");
  }
}

TEST(Scan, EmptyPrefixListsEverything) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "k" + std::to_string(i),
                                     "v").ok());
  }
  cluster.run_for(sim_ms(50));
  auto result = scan_sync(cluster, client, "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->keys.size(), 30u);
}

TEST(Scan, NoMatchesYieldsEmpty) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "present", "v").ok());
  auto result = scan_sync(cluster, client, "absent/");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->keys.empty());
}

TEST(Scan, PerNodeLimitReportsTruncation) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "big/t/" + std::to_string(i),
                                     "v").ok());
  }
  cluster.run_for(sim_ms(50));
  auto result = scan_sync(cluster, client, "big/", /*limit=*/5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_LE(result->keys.size(), 6u * 5u);
}

TEST(Scan, SurvivesSingleNodeCrashPartially) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "s/t/" + std::to_string(i),
                                     "v").ok());
  }
  cluster.run_for(sim_ms(50));
  cluster.crash_node(0);
  auto result = scan_sync(cluster, client, "s/");
  ASSERT_TRUE(result.ok());
  // The crashed node's primaries are missing until recovery, but the
  // survivors' share arrives.
  EXPECT_GT(result->keys.size(), 30u);
  EXPECT_LE(result->keys.size(), 60u);
}

TEST(Ttl, ValueExpiresOnEveryReplica) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  std::optional<Status> st;
  client.write_latest_ttl("session/tok/abc", "session-data",
                          sim_sec(2), [&](const Status& s) { st = s; });
  cluster.run_until([&] { return st.has_value(); });
  ASSERT_TRUE(st->ok());

  // Alive before expiry...
  auto got = cluster.read_latest(client, "session/tok/abc");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "session-data");

  // ...gone everywhere afterwards.
  cluster.run_for(sim_sec(3));
  auto expired = cluster.read_latest(client, "session/tok/abc");
  EXPECT_FALSE(expired.ok());
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    EXPECT_FALSE(
        cluster.node(i).local_store().read_latest("session/tok/abc").ok());
  }
}

TEST(Ttl, ZeroTtlNeverExpires) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  std::optional<Status> st;
  client.write_latest_ttl("forever", "v", 0, [&](const Status& s) {
    st = s;
  });
  cluster.run_until([&] { return st.has_value(); });
  ASSERT_TRUE(st->ok());
  cluster.run_for(sim_sec(30));
  EXPECT_TRUE(cluster.read_latest(client, "forever").ok());
}

TEST(Ttl, OverwriteWithoutTtlKeepsValueAlive) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  std::optional<Status> st;
  client.write_latest_ttl("k", "short-lived", sim_sec(1),
                          [&](const Status& s) { st = s; });
  cluster.run_until([&] { return st.has_value(); });
  ASSERT_TRUE(st->ok());
  // A later plain write leaves the old expiry in place (write_latest only
  // *sets* expiry when a ttl is given); the value itself is replaced but
  // the key still dies at the original deadline — memcached-style
  // behaviour where ttl belongs to the item.
  ASSERT_TRUE(cluster.write_latest(client, "k", "replacement").ok());
  auto got = cluster.read_latest(client, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "replacement");
}

}  // namespace
}  // namespace sedna::cluster
