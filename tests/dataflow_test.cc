// Tests for the dataflow pipeline framework: graph validation, cycle
// detection, end-to-end multi-stage flows, and guarded iterative cycles.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"
#include "trigger/dataflow.h"

namespace sedna::trigger::dataflow {
namespace {

using cluster::SednaCluster;
using cluster::SednaClusterConfig;

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

StageFn noop() {
  return [](const StageContext&) {};
}

TEST(Validation, RejectsDuplicateStageNames) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.stage("dup").reads("a").action(noop());
  b.stage("dup").reads("b").action(noop());
  EXPECT_FALSE(b.deploy().ok());
}

TEST(Validation, RejectsStageWithoutReadsOrAction) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  {
    PipelineBuilder b(triggers);
    b.stage("no-reads").action(noop());
    EXPECT_FALSE(b.deploy().ok());
  }
  {
    PipelineBuilder b(triggers);
    b.stage("no-action").reads("a");
    EXPECT_FALSE(b.deploy().ok());
  }
}

TEST(Cycles, LinearChainHasNoCycle) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.stage("s1").reads("a").writes("b").action(noop());
  b.stage("s2").reads("b").writes("c").action(noop());
  b.stage("s3").reads("c").writes("d").action(noop());
  EXPECT_FALSE(b.has_cycle());
  EXPECT_TRUE(b.deploy().ok());
}

TEST(Cycles, DirectCycleDetected) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.stage("a").reads("ping").writes("pong").action(noop());
  b.stage("b").reads("pong").writes("ping").action(noop());
  EXPECT_TRUE(b.has_cycle());
  const auto deployed = b.deploy();
  EXPECT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Cycles, SelfLoopDetected) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.stage("self").reads("state").writes("state").action(noop());
  EXPECT_TRUE(b.has_cycle());
}

TEST(Cycles, TableInsideDatasetLinks) {
  // Writing a table inside a dataset another stage reads counts as an
  // edge (hierarchy containment).
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.stage("w").reads("in").writes("ds/t").action(noop());
  b.stage("r").reads("ds").writes("in").action(noop());  // whole dataset
  EXPECT_TRUE(b.has_cycle());
}

TEST(Cycles, AllowedCycleRequiresUntilOnEveryStage) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.allow_cycles();
  b.stage("a").reads("x").writes("y").action(noop()).until(
      [](const std::string&, const std::string&) { return true; });
  b.stage("b").reads("y").writes("x").action(noop());  // no until()
  EXPECT_FALSE(b.deploy().ok());
}

TEST(EndToEnd, TwoStagePipelineTransforms) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.stage("upper")
      .reads("raw")
      .writes("upped")
      .interval(sim_ms(20))
      .action([](const StageContext& ctx) {
        std::string v = ctx.value();
        for (char& c : v) c = static_cast<char>(toupper(c));
        ctx.out().put("upped/t/" + ctx.row(), v);
      });
  b.stage("bang")
      .reads("upped")
      .writes("final")
      .interval(sim_ms(20))
      .action([](const StageContext& ctx) {
        ctx.out().put("final/t/" + ctx.row(), ctx.value() + "!");
      });
  auto deployed = b.deploy();
  ASSERT_TRUE(deployed.ok()) << deployed.status().to_string();
  EXPECT_EQ(deployed->stage_count(), 2u);

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "raw/t/greeting", "hello").ok());
  cluster.run_for(sim_sec(1));

  auto out = cluster.read_latest(client, "final/t/greeting");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->value, "HELLO!");
}

TEST(EndToEnd, GuardedCycleConverges) {
  // An iterative doubling task: state cycles through one stage until the
  // value reaches a bound; the until() filter is the stop condition.
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  b.allow_cycles();
  b.stage("doubler")
      .reads("iter")
      .writes("iter")
      .interval(sim_ms(20))
      .until([](const std::string&, const std::string& new_value) {
        return std::stoll(new_value) < 1000;  // keep running below 1000
      })
      .action([](const StageContext& ctx) {
        const long long v = std::stoll(ctx.value());
        ctx.out().put(ctx.key(), std::to_string(v * 2));
      });
  auto deployed = b.deploy();
  ASSERT_TRUE(deployed.ok()) << deployed.status().to_string();

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "iter/t/x", "1").ok());
  cluster.run_for(sim_sec(3));

  auto out = cluster.read_latest(client, "iter/t/x");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->value, "1024");  // doubled past the bound exactly once
  // And it stays there: the loop stopped.
  cluster.run_for(sim_sec(1));
  EXPECT_EQ(cluster.read_latest(client, "iter/t/x")->value, "1024");
}

TEST(EndToEnd, CancelStopsAllStages) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  PipelineBuilder b(triggers);
  auto hits = std::make_shared<int>(0);
  b.stage("only").reads("src").writes("dst").interval(sim_ms(20)).action(
      [hits](const StageContext&) { ++*hits; });
  auto deployed = b.deploy();
  ASSERT_TRUE(deployed.ok());

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "src/t/k1", "v").ok());
  cluster.run_for(sim_ms(300));
  ASSERT_EQ(*hits, 1);

  deployed->cancel();
  ASSERT_TRUE(cluster.write_latest(client, "src/t/k2", "v").ok());
  cluster.run_for(sim_ms(300));
  EXPECT_EQ(*hits, 1);
}

}  // namespace
}  // namespace sedna::trigger::dataflow
