// Property tests of the replication protocol (Section III.C): for every
// valid (N, R, W) configuration, read-your-writes must hold — including
// under a single replica crash — because R + W > N guarantees read/write
// quorum intersection.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

struct QuorumParam {
  std::uint32_t n, r, w;
  std::uint32_t data_nodes;
};

class QuorumSweep : public ::testing::TestWithParam<QuorumParam> {
 protected:
  static SednaClusterConfig config_for(const QuorumParam& p) {
    SednaClusterConfig cfg;
    cfg.zk_members = 3;
    cfg.data_nodes = p.data_nodes;
    cfg.cluster.total_vnodes = 128;
    cfg.cluster.replicas = p.n;
    cfg.cluster.read_quorum = p.r;
    cfg.cluster.write_quorum = p.w;
    return cfg;
  }
};

TEST_P(QuorumSweep, ConstraintsHold) {
  const auto p = GetParam();
  const auto cfg = config_for(p);
  // Every swept configuration satisfies the paper's two constraints.
  EXPECT_TRUE(cfg.cluster.quorum_valid());
  EXPECT_GT(p.r + p.w, p.n);
  EXPECT_GT(2 * p.w, p.n);
}

TEST_P(QuorumSweep, ReadYourWrites) {
  SednaCluster cluster(config_for(GetParam()));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 60; ++i) {
    const std::string key = "ryw-" + std::to_string(i);
    ASSERT_TRUE(cluster.write_latest(client, key, "v" +
                                     std::to_string(i)).ok());
    auto got = cluster.read_latest(client, key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got->value, "v" + std::to_string(i));
  }
}

TEST_P(QuorumSweep, ReplicationFactorMatchesN) {
  const auto p = GetParam();
  SednaCluster cluster(config_for(p));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "counted", "x").ok());
  cluster.run_for(sim_ms(20));
  std::uint32_t copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).local_store().read_latest("counted").ok()) ++copies;
  }
  EXPECT_EQ(copies, std::min<std::uint32_t>(p.n, p.data_nodes));
}

TEST_P(QuorumSweep, SurvivesMinorityReplicaCrash) {
  const auto p = GetParam();
  if (p.n >= p.data_nodes) GTEST_SKIP() << "no spare capacity";
  if (p.n == 1) GTEST_SKIP() << "N=1 has no crash tolerance to verify";
  SednaCluster cluster(config_for(p));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "c-" + std::to_string(i),
                                     "v").ok());
  }
  // Crash one node. Reads always survive: R of the N replicas still
  // answer (strict quorum), or the freshest-value fallback settles once
  // the survivors have all replied.
  cluster.crash_node(1);
  int read_ok = 0;
  for (int i = 0; i < 40; ++i) {
    auto got = cluster.read_latest(client, "c-" + std::to_string(i));
    if (got.ok() && got->value == "v") ++read_ok;
  }
  EXPECT_EQ(read_ok, 40);

  if (p.w < p.n) {
    // W < N: one dead replica cannot block the write quorum.
    int write_ok = 0;
    for (int i = 0; i < 20; ++i) {
      if (cluster.write_latest(client, "post-crash-" + std::to_string(i),
                               "v").ok()) {
        ++write_ok;
      }
    }
    EXPECT_EQ(write_ok, 20);
  } else {
    // W == N (write-all): keys whose replica set includes the dead node
    // CANNOT reach the quorum until recovery reassigns the vnode —
    // exactly the availability price of that configuration. After the
    // session expires and read-triggered recovery runs, writes go green.
    cluster.run_for(sim_sec(4));  // session expiry
    for (int i = 0; i < 40; ++i) {
      (void)cluster.read_latest(client, "c-" + std::to_string(i));
    }
    cluster.run_for(sim_sec(3));  // recovery + journal propagation
    int write_ok = 0;
    for (int i = 0; i < 20; ++i) {
      const std::string key = "post-crash-" + std::to_string(i);
      if (cluster.write_latest(client, key, "v").ok()) {
        ++write_ok;
        continue;
      }
      // 'failure' means "Sedna will start a recovery task asynchronously"
      // (Section III.F) — the write-triggered recovery fixes this very
      // vnode; a retry moments later must succeed.
      cluster.run_for(sim_sec(1));
      if (cluster.write_latest(client, key, "v").ok()) ++write_ok;
    }
    EXPECT_EQ(write_ok, 20);  // full availability after recovery
  }
}

TEST_P(QuorumSweep, ConcurrentWritersConvergeToOneWinner) {
  SednaCluster cluster(config_for(GetParam()));
  ASSERT_TRUE(cluster.boot().ok());
  auto& c1 = cluster.make_client();
  auto& c2 = cluster.make_client();

  // Interleave unsynchronized writes to one key from two clients.
  int done = 0;
  for (int round = 0; round < 10; ++round) {
    c1.write_latest("contended", "from-c1-" + std::to_string(round),
                    [&](const Status&) { ++done; });
    c2.write_latest("contended", "from-c2-" + std::to_string(round),
                    [&](const Status&) { ++done; });
  }
  cluster.run_until([&] { return done == 20; });
  cluster.run_for(sim_ms(100));

  // All replicas agree on a single winner (eventual consistency via LWW
  // timestamps + read repair is not even needed: writes replicate to all).
  std::optional<std::string> winner;
  std::optional<Timestamp> winner_ts;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto got = cluster.node(i).local_store().read_latest("contended");
    if (!got.ok()) continue;
    if (!winner.has_value()) {
      winner = got->value;
      winner_ts = got->ts;
    } else {
      EXPECT_EQ(got->value, *winner);
      EXPECT_EQ(got->ts, *winner_ts);
    }
  }
  ASSERT_TRUE(winner.has_value());
  // And a quorum read returns that winner.
  auto read = cluster.read_latest(c1, "contended");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, *winner);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, QuorumSweep,
    ::testing::Values(QuorumParam{3, 2, 2, 6},   // the paper's default
                      QuorumParam{3, 1, 3, 6},   // read-one write-all
                      QuorumParam{3, 3, 2, 6},   // read-all
                      QuorumParam{1, 1, 1, 4},   // no replication
                      QuorumParam{5, 3, 3, 8},   // wider quorum
                      QuorumParam{5, 2, 4, 8}),
    [](const ::testing::TestParamInfo<QuorumParam>& info) {
      return "n" + std::to_string(info.param.n) + "r" +
             std::to_string(info.param.r) + "w" +
             std::to_string(info.param.w) + "_nodes" +
             std::to_string(info.param.data_nodes);
    });

TEST(QuorumConfig, InvalidCombinationsRejected) {
  ClusterConfig cfg;
  cfg.replicas = 3;
  cfg.read_quorum = 1;
  cfg.write_quorum = 2;  // R + W = N, not > N
  EXPECT_FALSE(cfg.quorum_valid());
  cfg.read_quorum = 3;
  cfg.write_quorum = 1;  // W <= N/2
  EXPECT_FALSE(cfg.quorum_valid());
  cfg.read_quorum = 4;
  cfg.write_quorum = 3;  // R > N
  EXPECT_FALSE(cfg.quorum_valid());
  cfg.read_quorum = 2;
  cfg.write_quorum = 2;
  EXPECT_TRUE(cfg.quorum_valid());
}

}  // namespace
}  // namespace sedna::cluster
