// Repair-subsystem tests: LocalStore Merkle digests, hinted handoff,
// anti-entropy convergence with zero reads, hint eviction fallback,
// client retry backoff, and the per-reason network drop counters.
//
// The convergence tests deliberately never read the keys under test:
// read repair must not be the mechanism that heals them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/admin.h"
#include "cluster/sedna_cluster.h"
#include "common/hash.h"
#include "store/local_store.h"

namespace sedna::cluster {
namespace {

constexpr std::uint32_t kVnodes = 32;

SednaClusterConfig base_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = kVnodes;
  // Fast repair cadence so tests converge in a few simulated seconds.
  cfg.node_template.hint_replay_interval = sim_ms(100);
  cfg.node_template.hint_backoff_initial = sim_ms(50);
  cfg.node_template.hint_backoff_max = sim_ms(500);
  cfg.node_template.anti_entropy_interval = sim_ms(500);
  cfg.node_template.anti_entropy_vnodes_per_round = 4;
  return cfg;
}

std::size_t node_index(SednaCluster& cluster, NodeId id) {
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == id) return i;
  }
  ADD_FAILURE() << "no data node with id " << id;
  return SIZE_MAX;
}

/// Replicas currently holding `key` with value `want`, by direct store
/// inspection (no network traffic, cannot trigger read repair).
std::size_t replicas_holding(SednaCluster& cluster, const std::string& key,
                             const std::string& want) {
  std::size_t holders = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (!cluster.node(i).alive()) continue;
    auto got = cluster.node(i).local_store().read_latest(key);
    if (got.ok() && got->value == want) ++holders;
  }
  return holders;
}

std::uint64_t sum_counter(SednaCluster& cluster, const char* name) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    total += cluster.node(i).metrics().counter(name).value();
  }
  return total;
}

// ---- LocalStore digest tree --------------------------------------------

TEST(Digests, IdenticalContentMatchesRegardlessOfWriteOrder) {
  store::LocalStore a, b;
  a.enable_digests(kVnodes, 8);
  b.enable_digests(kVnodes, 8);

  // Same items, pinned timestamps, opposite insertion order; plus a
  // value list built in different per-source order.
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k-" + std::to_string(i);
    ASSERT_TRUE(a.write_latest(key, "v" + std::to_string(i),
                               1000 + i).ok());
  }
  for (int i = 49; i >= 0; --i) {
    const std::string key = "k-" + std::to_string(i);
    ASSERT_TRUE(b.write_latest(key, "v" + std::to_string(i),
                               1000 + i).ok());
  }
  ASSERT_TRUE(a.write_all("list", 1, "one", 10).ok());
  ASSERT_TRUE(a.write_all("list", 2, "two", 20).ok());
  ASSERT_TRUE(b.write_all("list", 2, "two", 20).ok());
  ASSERT_TRUE(b.write_all("list", 1, "one", 10).ok());

  for (VnodeId v = 0; v < kVnodes; ++v) {
    EXPECT_EQ(a.digest_root(v), b.digest_root(v)) << "vnode " << v;
    EXPECT_EQ(a.digest_buckets(v), b.digest_buckets(v)) << "vnode " << v;
  }
}

TEST(Digests, DivergenceIsIsolatedToTheKeysBucket) {
  store::LocalStore a, b;
  a.enable_digests(kVnodes, 8);
  b.enable_digests(kVnodes, 8);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k-" + std::to_string(i);
    ASSERT_TRUE(a.write_latest(key, "v", 1000 + i).ok());
    ASSERT_TRUE(b.write_latest(key, "v", 1000 + i).ok());
  }

  const std::string extra = "only-in-a";
  ASSERT_TRUE(a.write_latest(extra, "x", 9999).ok());
  const VnodeId hot = static_cast<VnodeId>(ring_hash(extra) % kVnodes);
  const std::uint32_t bucket = store::LocalStore::digest_bucket_of(extra, 8);

  for (VnodeId v = 0; v < kVnodes; ++v) {
    if (v == hot) {
      EXPECT_NE(a.digest_root(v), b.digest_root(v));
      const auto ba = a.digest_buckets(v);
      const auto bb = b.digest_buckets(v);
      for (std::uint32_t c = 0; c < 8; ++c) {
        if (c == bucket) {
          EXPECT_NE(ba[c], bb[c]);
        } else {
          EXPECT_EQ(ba[c], bb[c]);
        }
      }
    } else {
      EXPECT_EQ(a.digest_root(v), b.digest_root(v)) << "vnode " << v;
    }
  }
}

TEST(Digests, MutationsAreReversibleAndConvergent) {
  store::LocalStore a;
  a.enable_digests(kVnodes, 8);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.write_latest("k-" + std::to_string(i), "v", 100 + i).ok());
  }
  const std::uint64_t before = a.digest_root(
      static_cast<VnodeId>(ring_hash("scratch") % kVnodes));

  // Insert + delete restores the cell exactly (XOR is its own inverse).
  ASSERT_TRUE(a.write_latest("scratch", "tmp", 500).ok());
  EXPECT_NE(a.digest_root(static_cast<VnodeId>(ring_hash("scratch") %
                                               kVnodes)),
            before);
  ASSERT_TRUE(a.del("scratch").ok());
  EXPECT_EQ(a.digest_root(static_cast<VnodeId>(ring_hash("scratch") %
                                               kVnodes)),
            before);

  // A replica that replays the same pinned-ts write converges to the
  // same digest even though it saw a different history first.
  store::LocalStore b;
  b.enable_digests(kVnodes, 8);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(b.write_latest("k-" + std::to_string(i), "old", 1).ok());
    ASSERT_TRUE(b.write_latest("k-" + std::to_string(i), "v", 100 + i).ok());
  }
  for (VnodeId v = 0; v < kVnodes; ++v) {
    EXPECT_EQ(a.digest_root(v), b.digest_root(v)) << "vnode " << v;
  }
}

TEST(Digests, EnableOnPopulatedStoreMatchesIncrementalMaintenance) {
  store::LocalStore incremental, late;
  incremental.enable_digests(kVnodes, 8);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k-" + std::to_string(i);
    ASSERT_TRUE(incremental.write_latest(key, "v", 100 + i).ok());
    ASSERT_TRUE(late.write_latest(key, "v", 100 + i).ok());
  }
  late.enable_digests(kVnodes, 8);  // rebuild over existing content
  for (VnodeId v = 0; v < kVnodes; ++v) {
    EXPECT_EQ(incremental.digest_root(v), late.digest_root(v));
  }
}

// ---- Hinted handoff -----------------------------------------------------

TEST(HintedHandoff, TransientCrashHealsWithZeroReads) {
  SednaClusterConfig cfg = base_config();
  cfg.node_template.anti_entropy_interval = 0;  // isolate the hint path
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  const std::string key = "hinted-key";
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key(key);
  ASSERT_EQ(replicas.size(), 3u);
  const std::size_t victim = node_index(cluster, replicas[1]);
  const std::size_t coord = node_index(cluster, replicas[0]);

  cluster.crash_node(victim);
  // W=2 still succeeds; the coordinator queues a hint for the dead
  // replica once its RPC times out.
  ASSERT_TRUE(cluster.write_latest(client, key, "v1").ok());
  cluster.run_for(sim_ms(200));
  EXPECT_EQ(cluster.node(coord).hints_pending(), 1u);
  EXPECT_GE(cluster.node(coord)
                .metrics()
                .counter("coordinator.hints_queued")
                .value(),
            1u);
  EXPECT_EQ(replicas_holding(cluster, key, "v1"), 2u);

  // Stay down past session expiry so the restart registers a fresh
  // ephemeral znode — the signal the replay daemon waits for.
  cluster.run_for(sim_sec(3));
  cluster.restart_node(victim);
  ASSERT_TRUE(cluster.node(victim).ready());
  cluster.run_for(sim_sec(2));

  // No reads were issued; the hint alone restored RF 3.
  EXPECT_EQ(replicas_holding(cluster, key, "v1"), 3u);
  EXPECT_EQ(cluster.node(coord).hints_pending(), 0u);
  EXPECT_GE(cluster.node(coord)
                .metrics()
                .counter("coordinator.hints_delivered")
                .value(),
            1u);
  EXPECT_GE(cluster.node(victim)
                .metrics()
                .counter("replica.hints_received")
                .value(),
            1u);
}

TEST(HintedHandoff, CoalescesRewritesOfTheSameKey) {
  SednaClusterConfig cfg = base_config();
  cfg.node_template.anti_entropy_interval = 0;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  const std::string key = "rewrite-me";
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key(key);
  const std::size_t victim = node_index(cluster, replicas[1]);
  const std::size_t coord = node_index(cluster, replicas[0]);

  cluster.crash_node(victim);
  ASSERT_TRUE(cluster.write_latest(client, key, "v1").ok());
  cluster.run_for(sim_ms(100));
  ASSERT_TRUE(cluster.write_latest(client, key, "v2").ok());
  cluster.run_for(sim_ms(100));
  // One slot, upgraded in place to the newest write.
  EXPECT_EQ(cluster.node(coord).hints_pending(), 1u);

  cluster.run_for(sim_sec(3));
  cluster.restart_node(victim);
  cluster.run_for(sim_sec(2));
  auto got = cluster.node(victim).local_store().read_latest(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v2");
}

// ---- Merkle anti-entropy ------------------------------------------------

TEST(AntiEntropy, ColdKeyConvergesWithZeroReads) {
  SednaClusterConfig cfg = base_config();
  cfg.node_template.hint_max_queued = 0;  // isolate the Merkle path
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  const std::string key = "cold-key";
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key(key);
  ASSERT_EQ(replicas.size(), 3u);

  // Partition the third replica away from the other two (its ZooKeeper
  // session stays alive, so no recovery reassignment fires) and write.
  cluster.network().partition(replicas[2], replicas[0]);
  cluster.network().partition(replicas[2], replicas[1]);
  ASSERT_TRUE(cluster.write_latest(client, key, "cold").ok());
  cluster.run_for(sim_ms(200));
  EXPECT_EQ(replicas_holding(cluster, key, "cold"), 2u);

  cluster.network().heal_all();
  // A handful of anti-entropy rounds: each node sweeps its ~16 replica
  // vnodes at 4 per 500 ms round, so one full sweep takes 2 s.
  cluster.run_for(sim_sec(6));

  EXPECT_EQ(replicas_holding(cluster, key, "cold"), 3u);
  EXPECT_GE(sum_counter(cluster, "antientropy.digest_mismatches"), 1u);
  EXPECT_GE(sum_counter(cluster, "antientropy.keys_pushed") +
                sum_counter(cluster, "antientropy.keys_pulled"),
            1u);
}

TEST(AntiEntropy, RepairedKeySurvivesLosingBothOriginalWriters) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  const std::string key = "survivor";
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key(key);
  ASSERT_EQ(replicas.size(), 3u);
  const std::size_t victim = node_index(cluster, replicas[2]);

  // Write with the third replica down: only two nodes hold the ack'd
  // value.
  cluster.crash_node(victim);
  ASSERT_TRUE(cluster.write_latest(client, key, "precious").ok());
  cluster.run_for(sim_ms(200));
  EXPECT_EQ(replicas_holding(cluster, key, "precious"), 2u);

  // Heal; hint replay (or anti-entropy) restores the third copy.
  cluster.run_for(sim_sec(3));
  cluster.restart_node(victim);
  ASSERT_TRUE(cluster.run_until([&] {
    return replicas_holding(cluster, key, "precious") == 3;
  }));

  // Now lose the two replicas that took the original write. The value
  // survives on the repaired third copy and stays readable.
  cluster.crash_node(node_index(cluster, replicas[0]));
  cluster.crash_node(node_index(cluster, replicas[1]));
  auto got = cluster.read_latest(client, key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "precious");
}

TEST(AntiEntropy, CoversHintsLostToEviction) {
  SednaClusterConfig cfg = base_config();
  cfg.node_template.hint_max_queued = 1;  // force eviction under load
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  cluster.crash_node(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 60; ++i) {
    keys.push_back("evict-" + std::to_string(i));
    ASSERT_TRUE(cluster.write_latest(client, keys.back(), "v").ok());
  }
  cluster.run_for(sim_ms(200));
  // The one-hint cap cannot hold every key routed at the dead node.
  EXPECT_GE(sum_counter(cluster, "coordinator.hints_evicted"), 1u);

  cluster.run_for(sim_sec(3));
  cluster.restart_node(3);
  cluster.run_for(sim_sec(8));

  // Merkle repair backfills what the evicted hints lost: every key is
  // back at full replication without a single read.
  ClusterInspector inspector(cluster);
  EXPECT_EQ(inspector.under_replicated(keys, 3), 0u);
}

// ---- Client retry backoff ----------------------------------------------

TEST(ClientBackoff, RetryWaitsAreRecordedAndBounded) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "bo", "v").ok());

  const NodeId primary =
      client.metadata().table().replicas_for_key("bo")[0];
  cluster.crash_node(node_index(cluster, primary));

  auto got = cluster.read_latest(client, "bo");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");

  const auto& hist = client.metrics().histogram("client.retry_backoff_us");
  ASSERT_GE(hist.count(), 1u);
  const auto& ccfg = cluster.config().client_template;
  EXPECT_GE(hist.min(),
            static_cast<std::uint64_t>(
                static_cast<double>(ccfg.retry_backoff_initial_us) *
                (1.0 - ccfg.retry_backoff_jitter)));
  EXPECT_LE(hist.max(),
            static_cast<std::uint64_t>(
                static_cast<double>(ccfg.retry_backoff_max_us) *
                (1.0 + ccfg.retry_backoff_jitter)) +
                1);
}

// ---- Network drop accounting -------------------------------------------

TEST(NetworkMetrics, DropsAreBrokenDownByReason) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  auto& net = cluster.network().metrics();

  // A key replicated on node 0, written while node 0 is down, guarantees
  // at least one replica RPC lands on the crashed node.
  std::string crashed_key;
  for (int i = 0; i < 100 && crashed_key.empty(); ++i) {
    const std::string candidate = "r-" + std::to_string(i);
    const auto replicas =
        cluster.node(0).metadata().table().replicas_for_key(candidate);
    for (NodeId r : replicas) {
      if (r == cluster.node(0).id() && r != replicas[0]) {
        crashed_key = candidate;  // replica but not coordinator
        break;
      }
    }
  }
  ASSERT_FALSE(crashed_key.empty());
  cluster.crash_node(0);
  (void)cluster.write_latest(client, crashed_key, "v");
  cluster.run_for(sim_ms(200));
  EXPECT_GE(net.counter("net.drops.crashed").value(), 1u);

  cluster.run_for(sim_sec(3));  // session expiry before the restart
  cluster.restart_node(0);
  const auto ids = cluster.data_ids();
  cluster.network().partition(ids[1], ids[2]);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.write_latest(client, "p-" + std::to_string(i), "v");
  }
  cluster.network().heal_all();
  EXPECT_GE(net.counter("net.drops.partitioned").value(), 1u);

  cluster.network().set_loss_prob(0.2);
  for (int i = 0; i < 20; ++i) {
    (void)cluster.write_latest(client, "l-" + std::to_string(i), "v");
  }
  cluster.network().set_loss_prob(0.0);
  EXPECT_GE(net.counter("net.drops.loss").value(), 1u);

  // All three reasons surface, labeled, in the cluster metrics dump.
  ClusterInspector inspector(cluster);
  const std::string text = inspector.metrics_text();
  EXPECT_NE(text.find("sedna_net_drops_crashed{node=\"network\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sedna_net_drops_partitioned{node=\"network\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sedna_net_drops_loss{node=\"network\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace sedna::cluster
