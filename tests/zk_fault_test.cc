// Fault-injection tests for the ZooKeeper-lite ensemble: lossy links,
// dropped commits (gap fill via tree sync), concurrent sequential
// creators, and partition behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "sim/network.h"
#include "sim/simulation.h"
#include "zk/zk_client.h"
#include "zk/zk_server.h"

namespace sedna::zk {
namespace {

class ClientHost : public sim::Host {
 public:
  ClientHost(sim::Network& net, NodeId id, std::vector<NodeId> ensemble)
      : sim::Host(net, id), zk_(*this, [&] {
          ZkClientConfig cfg;
          cfg.ensemble = std::move(ensemble);
          return cfg;
        }()) {}
  ZkClient& zk() { return zk_; }

 protected:
  void on_message(const sim::Message& msg) override {
    if (msg.type == kMsgWatchEvent) zk_.on_watch_event(msg.payload);
  }

 private:
  ZkClient zk_;
};

class ZkFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(23);
    net_ = std::make_unique<sim::Network>(*sim_);
    ZkServerConfig cfg;
    cfg.ensemble = {0, 1, 2};
    for (NodeId id : cfg.ensemble) {
      servers_.push_back(std::make_unique<ZkServer>(*net_, id, cfg));
      servers_.back()->start();
    }
    sim_->run_for(sim_ms(5));
  }

  std::unique_ptr<ClientHost> make_client(NodeId id) {
    auto host = std::make_unique<ClientHost>(*net_, id,
                                             std::vector<NodeId>{0, 1, 2});
    std::optional<Status> st;
    host->zk().connect([&](const Status& s) { st = s; });
    run_until([&] { return st.has_value(); });
    EXPECT_TRUE(st.has_value() && st->ok());
    return host;
  }

  void run_until(const std::function<bool()>& pred) {
    const SimTime deadline = sim_->now() + sim_sec(300);
    while (!pred() && sim_->now() < deadline &&
           sim_->pending_events() > 0) {
      sim_->step();
    }
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<ZkServer>> servers_;
};

TEST_F(ZkFaultTest, WritesSucceedOnLossyNetwork) {
  auto client = make_client(100);
  net_->set_loss_prob(0.05);
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    std::optional<Status> st;
    client->zk().create("/lossy" + std::to_string(i), "v",
                        CreateMode::kPersistent,
                        [&](const Result<std::string>& r) {
                          st = r.status();
                        });
    run_until([&] { return st.has_value(); });
    // AlreadyExists counts: the create committed but the ack was lost and
    // the client retried — at-least-once with idempotence detection.
    if (st.has_value() &&
        (st->ok() || st->is(StatusCode::kAlreadyExists))) {
      ++ok;
    }
  }
  EXPECT_GE(ok, 48);
  net_->set_loss_prob(0.0);
  sim_->run_for(sim_sec(2));
  // Ensemble converged despite the lost messages.
  EXPECT_EQ(servers_[1]->tree().node_count(),
            servers_[0]->tree().node_count());
}

TEST_F(ZkFaultTest, FollowerGapFilledByTreeSync) {
  auto client = make_client(100);
  // Cut follower 2 off from the leader: commits can't reach it.
  net_->partition(0, 2);
  for (int i = 0; i < 20; ++i) {
    std::optional<Status> st;
    client->zk().create("/gap" + std::to_string(i), "v",
                        CreateMode::kPersistent,
                        [&](const Result<std::string>& r) {
                          st = r.status();
                        });
    run_until([&] { return st.has_value(); });
    ASSERT_TRUE(st->ok());
  }
  EXPECT_LT(servers_[2]->tree().node_count(),
            servers_[0]->tree().node_count());

  net_->heal(0, 2);
  // The next commit (or buffered backlog) makes the follower notice its
  // gap and request a full tree sync.
  std::optional<Status> st;
  client->zk().create("/after-heal", "v", CreateMode::kPersistent,
                      [&](const Result<std::string>& r) { st = r.status(); });
  run_until([&] { return st.has_value(); });
  sim_->run_for(sim_sec(2));
  EXPECT_EQ(servers_[2]->tree().node_count(),
            servers_[0]->tree().node_count());
  EXPECT_TRUE(servers_[2]->tree().get("/gap5").ok());
}

TEST_F(ZkFaultTest, ConcurrentSequentialNamesAreUnique) {
  auto c1 = make_client(100);
  auto c2 = make_client(101);
  auto c3 = make_client(102);
  {
    std::optional<Status> st;
    c1->zk().create("/q", "", CreateMode::kPersistent,
                    [&](const Result<std::string>& r) { st = r.status(); });
    run_until([&] { return st.has_value(); });
    ASSERT_TRUE(st->ok());
  }

  auto names = std::make_shared<std::vector<std::string>>();
  int issued = 0;
  for (int round = 0; round < 20; ++round) {
    for (ClientHost* c : {c1.get(), c2.get(), c3.get()}) {
      ++issued;
      c->zk().create("/q/item-", "", CreateMode::kPersistentSequential,
                     [names](const Result<std::string>& r) {
                       if (r.ok()) names->push_back(r.value());
                     });
    }
  }
  run_until([&] { return static_cast<int>(names->size()) == issued; });
  ASSERT_EQ(static_cast<int>(names->size()), issued);
  const std::set<std::string> unique(names->begin(), names->end());
  EXPECT_EQ(unique.size(), names->size());  // no duplicates, ever
}

TEST_F(ZkFaultTest, MinorityPartitionStillServesQuorumWrites) {
  auto client = make_client(100);
  // Isolate member 2 from both peers (it can still hear the client).
  net_->partition(2, 0);
  net_->partition(2, 1);
  std::optional<Status> st;
  client->zk().create("/minority", "v", CreateMode::kPersistent,
                      [&](const Result<std::string>& r) { st = r.status(); });
  run_until([&] { return st.has_value(); });
  EXPECT_TRUE(st->ok());  // 2-of-3 quorum suffices
}

TEST_F(ZkFaultTest, TwoMemberCrashBlocksWrites) {
  auto client = make_client(100);
  servers_[1]->crash();
  servers_[2]->crash();
  sim_->run_for(sim_sec(2));
  std::optional<Status> st;
  client->zk().create("/no-quorum", "v", CreateMode::kPersistent,
                      [&](const Result<std::string>& r) { st = r.status(); });
  run_until([&] { return st.has_value(); });
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->ok());  // majority lost: linearizable writes must fail
}

TEST_F(ZkFaultTest, ReadsStillServedWithoutQuorum) {
  auto client = make_client(100);
  std::optional<Status> created;
  client->zk().create("/still-readable", "v", CreateMode::kPersistent,
                      [&](const Result<std::string>& r) {
                        created = r.status();
                      });
  run_until([&] { return created.has_value(); });
  ASSERT_TRUE(created->ok());
  sim_->run_for(sim_ms(100));

  servers_[1]->crash();
  servers_[2]->crash();
  // ZooKeeper semantics: member-local reads keep working (possibly
  // stale) even when the write quorum is gone.
  std::optional<bool> read_ok;
  client->zk().get("/still-readable",
                   [&](const Result<std::pair<std::string, ZnodeStat>>& r) {
                     read_ok = r.ok();
                   });
  run_until([&] { return read_ok.has_value(); });
  EXPECT_TRUE(read_ok.value_or(false));
}

}  // namespace
}  // namespace sedna::zk
