#!/usr/bin/env bash
# Builds the full test suite under AddressSanitizer + UBSan and runs it.
# Usage: tests/run_sanitized.sh [extra ctest args...]
# Uses a separate build tree (build-asan) so the regular build stays fast.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-asan"

cmake -B "${build_dir}" -S "${repo_root}" -DSEDNA_SANITIZE=ON
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
cd "${build_dir}"
ctest --output-on-failure -j "$(nproc)" "$@"

# One sanitized pass over the rebalancer ablation: the migration
# protocol's async continuations and purge paths run under ASan/UBSan.
reb_tmp="$(mktemp -d)"
trap 'rm -rf "${reb_tmp}"' EXIT
(cd "${reb_tmp}" && "${build_dir}/bench/hotkey_skew" rebalance)
echo "sanitized rebalance ablation: OK"

# One sanitized pass over the failure drill: tracing, tail retention,
# critical-path attribution and the exemplar-linked histogram export all
# run under ASan/UBSan, and its attribution report must still clear the
# drill's own coverage/dominance gates (non-zero exit otherwise).
drill_tmp="$(mktemp -d "${reb_tmp}/drill.XXXXXX")"
(cd "${drill_tmp}" && SEDNA_OUT_DIR="${drill_tmp}" \
 "${build_dir}/examples/failure_drill" > /dev/null)
echo "sanitized failure drill (attribution gates): OK"

# One sanitized pass over the chaos scenario suite: admission-control
# sheds, deadline drops, retry-budget accounting, degraded reads,
# restart hydration, and the whole causal-versioning path (dot minting,
# sibling joins, causal read repair, causal hint replay) all run under
# ASan/UBSan, and the suite's own gates must still pass — including the
# lost-update ablation's "DVV loses zero acked updates" gate (non-zero
# exit otherwise).
ss_tmp="$(mktemp -d "${reb_tmp}/ss.XXXXXX")"
SEDNA_OUT_DIR="${ss_tmp}" "${build_dir}/bench/scenario_suite" > /dev/null
echo "sanitized scenario suite (overload gates): OK"
