// Tests for the cluster flight recorder: ring eviction, total ordering,
// CSV escaping, and the byte-identical render contract that the
// determinism sweep leans on.
#include <gtest/gtest.h>

#include "common/flight_recorder.h"

namespace sedna {
namespace {

TEST(FlightRecorder, RecordsInOrderWithMonotoneSeq) {
  FlightRecorder fr;
  fr.record(10, "chaos", "bench", "partition");
  fr.record(10, "alert", "monitor", "fired:replica-lag", "value=3");
  fr.record(25, "health", "node-1", "degraded");
  ASSERT_EQ(fr.events().size(), 3u);
  EXPECT_EQ(fr.recorded(), 3u);
  EXPECT_EQ(fr.dropped(), 0u);
  // Same-instant events keep assignment order via seq.
  EXPECT_EQ(fr.events()[0].seq, 0u);
  EXPECT_EQ(fr.events()[1].seq, 1u);
  EXPECT_EQ(fr.events()[0].at, fr.events()[1].at);
  EXPECT_EQ(fr.events()[2].label, "degraded");
  EXPECT_EQ(fr.events()[1].detail, "value=3");
}

TEST(FlightRecorder, RingEvictsOldestAndCountsDrops) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.record(static_cast<SimTime>(i), "chaos", "bench",
              "ev" + std::to_string(i));
  }
  EXPECT_EQ(fr.capacity(), 4u);
  ASSERT_EQ(fr.events().size(), 4u);
  EXPECT_EQ(fr.recorded(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  // Newest four survive; seqs keep their lifetime values.
  EXPECT_EQ(fr.events().front().label, "ev6");
  EXPECT_EQ(fr.events().front().seq, 6u);
  EXPECT_EQ(fr.events().back().label, "ev9");
  // The render advertises the truncation.
  EXPECT_NE(fr.render("t").find("6 older event(s) evicted"),
            std::string::npos);
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  FlightRecorder fr(0);
  fr.record(1, "a", "b", "c");
  fr.record(2, "a", "b", "d");
  ASSERT_EQ(fr.events().size(), 1u);
  EXPECT_EQ(fr.events().front().label, "d");
}

TEST(FlightRecorder, CsvEscapesDelimiters) {
  FlightRecorder fr;
  fr.record(7, "chaos", "bench", "with,comma", "say \"hi\"\nnext");
  const std::string csv = fr.csv();
  EXPECT_NE(csv.find("seq,at_us,category,source,label,detail\n"),
            std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  // Embedded quotes double, and the newline stays inside the quotes.
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\nnext\""), std::string::npos);
}

TEST(FlightRecorder, EmptyRenderSaysSo) {
  FlightRecorder fr;
  const std::string out = fr.render("quiet run");
  EXPECT_NE(out.find("=== incident timeline: quiet run ==="),
            std::string::npos);
  EXPECT_NE(out.find("(no events recorded)"), std::string::npos);
}

TEST(FlightRecorder, IdenticalRecordingsRenderByteIdentically) {
  auto feed = [](FlightRecorder& fr) {
    fr.record(100, "chaos", "bench", "partition", "zone halves cut");
    fr.record(100, "health", "node-2", "down", "was up");
    fr.record(2500, "alert", "monitor", "fired:staleness-budget",
              "value=2.1e+06 severity=warning");
    fr.record(9000, "chaos", "bench", "heal");
  };
  FlightRecorder a, b;
  feed(a);
  feed(b);
  EXPECT_EQ(a.render("incident"), b.render("incident"));
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_FALSE(a.csv().empty());
}

TEST(FlightRecorder, ClearKeepsLifetimeTotals) {
  FlightRecorder fr(2);
  fr.record(1, "a", "b", "c");
  fr.record(2, "a", "b", "d");
  fr.record(3, "a", "b", "e");
  fr.clear();
  EXPECT_TRUE(fr.events().empty());
  EXPECT_EQ(fr.recorded(), 3u);
  EXPECT_EQ(fr.dropped(), 1u);
  fr.record(4, "a", "b", "f");
  EXPECT_EQ(fr.events().front().seq, 3u);
}

}  // namespace
}  // namespace sedna
