// Unit tests for the trigger API surface (DataHooks matching, filters,
// jobs) and focused runtime behaviours not covered by the end-to-end
// trigger suite (stats accounting, monitored-predicate maintenance,
// multiple jobs on one runtime).
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"
#include "trigger/service.h"

namespace sedna::trigger {
namespace {

// ---- DataHooks ---------------------------------------------------------------

TEST(DataHooks, PairHookMatchesOnlyThatPair) {
  DataHooks hooks;
  hooks.add("ds/t/k");
  EXPECT_TRUE(hooks.matches("ds/t/k"));
  EXPECT_FALSE(hooks.matches("ds/t/other"));
  EXPECT_FALSE(hooks.matches("ds/t2/k"));
}

TEST(DataHooks, TableHookMatchesItsPairs) {
  DataHooks hooks;
  hooks.add("ds/t");
  EXPECT_TRUE(hooks.matches("ds/t/k1"));
  EXPECT_TRUE(hooks.matches("ds/t/k2"));
  EXPECT_FALSE(hooks.matches("ds/t2/k1"));
  EXPECT_FALSE(hooks.matches("other/t/k1"));
}

TEST(DataHooks, DatasetHookMatchesAllTables) {
  DataHooks hooks;
  hooks.add("ds");
  EXPECT_TRUE(hooks.matches("ds/t1/k"));
  EXPECT_TRUE(hooks.matches("ds/t2/k"));
  EXPECT_FALSE(hooks.matches("other/t/k"));
}

TEST(DataHooks, MultipleHooksUnion) {
  DataHooks hooks;
  hooks.add("a/t").add("b");
  EXPECT_TRUE(hooks.matches("a/t/x"));
  EXPECT_TRUE(hooks.matches("b/anything/x"));
  EXPECT_FALSE(hooks.matches("a/u/x"));
}

TEST(DataHooks, EmptyMatchesNothing) {
  DataHooks hooks;
  EXPECT_TRUE(hooks.empty());
  EXPECT_FALSE(hooks.matches("a/b/c"));
}

// ---- Filters -----------------------------------------------------------------

TEST(Filters, PassAllAlwaysTrue) {
  PassAllFilter filter;
  EXPECT_TRUE(filter.assert_change("", "", "", ""));
  EXPECT_TRUE(filter.assert_change("k", "old", "k", "new"));
}

TEST(Filters, FunctionFilterSeesAllFourArguments) {
  std::vector<std::string> seen;
  FunctionFilter filter([&](const std::string& ok, const std::string& ov,
                            const std::string& nk, const std::string& nv) {
    seen = {ok, ov, nk, nv};
    return false;
  });
  EXPECT_FALSE(filter.assert_change("oldk", "oldv", "newk", "newv"));
  EXPECT_EQ(seen,
            (std::vector<std::string>{"oldk", "oldv", "newk", "newv"}));
}

// ---- Job ----------------------------------------------------------------------

TEST(JobConfig, DefaultFilterIsPassAll) {
  Job::Config jc;
  jc.name = "j";
  DataHooks hooks;
  hooks.add("x");
  Job job(jc, TriggerInput{hooks, nullptr}, TriggerOutput{},
          std::make_shared<FunctionAction>(
              [](const std::string&, const std::vector<std::string>&,
                 ResultWriter&) {}));
  EXPECT_TRUE(job.filter().assert_change("", "", "", ""));
  EXPECT_EQ(job.config().name, "j");
}

// ---- Runtime-focused behaviours -------------------------------------------------

cluster::SednaClusterConfig small_config() {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

std::shared_ptr<Job> counting_job(const std::string& name,
                                  const std::string& hook,
                                  std::shared_ptr<int> counter) {
  Job::Config jc;
  jc.name = name;
  jc.trigger_interval = sim_ms(20);
  DataHooks hooks;
  hooks.add(hook);
  return std::make_shared<Job>(
      jc, TriggerInput{hooks, {}}, TriggerOutput{},
      std::make_shared<FunctionAction>(
          [counter](const std::string&, const std::vector<std::string>&,
                    ResultWriter&) { ++*counter; }));
}

TEST(Runtime, MultipleJobsOnSameKeyEachFire) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto c1 = std::make_shared<int>(0);
  auto c2 = std::make_shared<int>(0);
  triggers.schedule(counting_job("j1", "t", c1));
  triggers.schedule(counting_job("j2", "t/x", c2));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "v").ok());
  cluster.run_for(sim_ms(200));
  EXPECT_EQ(*c1, 1);
  EXPECT_EQ(*c2, 1);
}

TEST(Runtime, CancelStopsFutureActivations) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto counter = std::make_shared<int>(0);
  triggers.schedule(counting_job("gone", "t", counter));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k1", "v").ok());
  cluster.run_for(sim_ms(200));
  ASSERT_EQ(*counter, 1);

  triggers.cancel("gone");
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k2", "v").ok());
  cluster.run_for(sim_ms(200));
  EXPECT_EQ(*counter, 1);
}

TEST(Runtime, CancelDisablesChangeCaptureWhenLastJobGoes) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto counter = std::make_shared<int>(0);
  triggers.schedule(counting_job("only", "t", counter));
  triggers.cancel("only");

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "v").ok());
  cluster.run_for(sim_ms(100));
  // No job: the stores must not accumulate dirty records.
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    EXPECT_EQ(cluster.node(i).local_store().pending_changes(), 0u);
  }
}

TEST(Runtime, StatsAccountChangesAndSkips) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto counter = std::make_shared<int>(0);
  triggers.schedule(counting_job("stats", "t", counter));

  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "v").ok());
  cluster.run_for(sim_ms(200));

  const auto stats = triggers.aggregate_stats();
  // One write lands on 3 replicas => 3 captured changes cluster-wide,
  // 2 skipped as non-primary, 1 activation.
  EXPECT_EQ(stats.changes_seen, 3u);
  EXPECT_EQ(stats.non_primary_skipped, 2u);
  EXPECT_EQ(stats.activations, 1u);
  EXPECT_EQ(stats.unmatched, 0u);
}

TEST(Runtime, UnmatchedChangesCounted) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto counter = std::make_shared<int>(0);
  triggers.schedule(counting_job("narrow", "watched", counter));

  auto& client = cluster.make_client();
  // The monitored predicate only captures "watched/..." keys, so writes
  // elsewhere produce no dirty records at all.
  ASSERT_TRUE(cluster.write_latest(client, "elsewhere/t/k", "v").ok());
  cluster.run_for(sim_ms(200));
  const auto stats = triggers.aggregate_stats();
  EXPECT_EQ(stats.changes_seen, 0u);
  EXPECT_EQ(*counter, 0);
}

TEST(Runtime, ValuesCarryWriteAllList) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto values_seen = std::make_shared<std::vector<std::string>>();
  {
    Job::Config jc;
    jc.name = "list";
    jc.trigger_interval = sim_ms(20);
    DataHooks hooks;
    hooks.add("t");
    triggers.schedule(std::make_shared<Job>(
        jc, TriggerInput{hooks, {}}, TriggerOutput{},
        std::make_shared<FunctionAction>(
            [values_seen](const std::string&,
                          const std::vector<std::string>& values,
                          ResultWriter&) { *values_seen = values; })));
  }
  auto& c1 = cluster.make_client();
  auto& c2 = cluster.make_client();
  ASSERT_TRUE(cluster.write_all(c1, "t/x/k", "alpha").ok());
  ASSERT_TRUE(cluster.write_all(c2, "t/x/k", "beta").ok());
  cluster.run_for(sim_ms(300));

  ASSERT_EQ(values_seen->size(), 2u);
  std::sort(values_seen->begin(), values_seen->end());
  EXPECT_EQ((*values_seen)[0], "alpha");
  EXPECT_EQ((*values_seen)[1], "beta");
}

TEST(Runtime, PendingActivationsDrainAfterInterval) {
  cluster::SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  TriggerService triggers(cluster);
  auto counter = std::make_shared<int>(0);
  {
    Job::Config jc;
    jc.name = "slow";
    jc.trigger_interval = sim_ms(500);
    DataHooks hooks;
    hooks.add("t");
    triggers.schedule(std::make_shared<Job>(
        jc, TriggerInput{hooks, {}}, TriggerOutput{},
        std::make_shared<FunctionAction>(
            [counter](const std::string&, const std::vector<std::string>&,
                      ResultWriter&) { ++*counter; })));
  }
  auto& client = cluster.make_client();
  // First write fires promptly; the immediate second write is pending
  // until the interval elapses.
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "v1").ok());
  cluster.run_for(sim_ms(100));
  ASSERT_EQ(*counter, 1);
  ASSERT_TRUE(cluster.write_latest(client, "t/x/k", "v2").ok());
  cluster.run_for(sim_ms(100));
  EXPECT_EQ(*counter, 1);  // throttled
  cluster.run_for(sim_ms(600));
  EXPECT_EQ(*counter, 2);  // delivered after the interval
}

}  // namespace
}  // namespace sedna::trigger
