// Overload-safety tests: bounded priority-classed ingress queues,
// deadline propagation and expiry shedding, client retry budgets,
// degraded (stale) reads, and a miniature retry-storm metastability
// experiment proving the defenses change the outcome, not just the
// numbers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/sedna_cluster.h"
#include "sim/host.h"
#include "workload/open_loop.h"

namespace sedna::cluster {
namespace {

// ---- host-level admission / deadline mechanics ------------------------------

/// Records what got serviced and what got shed; priority class == the
/// message type (so tests pick the class directly).
class ToyHost : public sim::Host {
 public:
  ToyHost(sim::Network& net, NodeId id, sim::HostConfig cfg)
      : Host(net, id, cfg) {}

  std::vector<sim::MessageType> serviced;
  std::vector<sim::MessageType> shed_types;
  std::vector<sim::ShedReason> shed_reasons;

 protected:
  void on_message(const sim::Message& msg) override {
    serviced.push_back(msg.type);
  }
  [[nodiscard]] std::size_t message_priority(
      const sim::Message& msg) const override {
    return msg.type;
  }
  void on_shed(const sim::Message& msg, sim::ShedReason reason) override {
    shed_types.push_back(msg.type);
    shed_reasons.push_back(reason);
  }
};

sim::Message make_msg(sim::MessageType type, SimTime deadline = 0) {
  sim::Message msg{/*from=*/1, /*to=*/2, type, /*rpc_id=*/0,
                   /*is_response=*/false, "payload"};
  msg.deadline = deadline;
  return msg;
}

TEST(IngressQueue, AdmissionCapsShedBackgroundClassesFirst) {
  sim::Simulation simulation(7);
  sim::Network net(simulation, {});
  sim::HostConfig cfg;
  cfg.base_service_us = 100;
  cfg.service_jitter_frac = 0.0;
  cfg.max_ingress_queue = 4;  // class caps: 4, 3, 2, 1
  ToyHost host(net, 2, cfg);

  // First message goes straight into service (queue empty again).
  host.deliver(make_msg(0));
  // Class 3 (migration-like): cap 1 — one slot, then shed.
  host.deliver(make_msg(3));
  host.deliver(make_msg(3));
  EXPECT_EQ(host.shed_queue_full(), 1u);
  // Class 2: cap 2 — fits at depth 1, shed at depth 2.
  host.deliver(make_msg(2));
  host.deliver(make_msg(2));
  EXPECT_EQ(host.shed_queue_full(), 2u);
  // Class 0 (client reads) still has room up to the full cap of 4.
  host.deliver(make_msg(0));
  host.deliver(make_msg(0));
  EXPECT_EQ(host.queue_depth(), 4u);
  host.deliver(make_msg(0));  // over the full cap: even reads shed now
  EXPECT_EQ(host.shed_queue_full(), 3u);

  simulation.run_for(sim_ms(10));
  // Everything admitted was serviced, highest class first after the one
  // already on the CPU.
  const std::vector<sim::MessageType> want = {0, 0, 0, 2, 3};
  EXPECT_EQ(host.serviced, want);
  EXPECT_EQ(host.shed_types, (std::vector<sim::MessageType>{3, 2, 0}));
  for (sim::ShedReason r : host.shed_reasons) {
    EXPECT_EQ(r, sim::ShedReason::kQueueFull);
  }
}

TEST(IngressQueue, ExpiredDeadlineShedAtDequeueWithoutService) {
  sim::Simulation simulation(7);
  sim::Network net(simulation, {});
  sim::HostConfig cfg;
  cfg.base_service_us = 100;
  cfg.service_jitter_frac = 0.0;
  ToyHost host(net, 2, cfg);

  // A occupies the CPU until t=100; B's deadline (t=50) expires while it
  // waits behind A, so it is shed at dequeue and costs no CPU. C (no
  // deadline) and D (future deadline) run normally.
  host.deliver(make_msg(0));               // A
  host.deliver(make_msg(1, /*deadline=*/50));   // B: dead on dequeue
  host.deliver(make_msg(2));               // C
  host.deliver(make_msg(3, sim_sec(1)));   // D: plenty of time
  simulation.run_for(sim_ms(10));

  EXPECT_EQ(host.serviced, (std::vector<sim::MessageType>{0, 2, 3}));
  EXPECT_EQ(host.shed_deadline(), 1u);
  EXPECT_EQ(host.shed_types, (std::vector<sim::MessageType>{1}));
  EXPECT_EQ(host.shed_reasons[0], sim::ShedReason::kDeadlineExceeded);
}

TEST(IngressQueue, ExpiredOnArrivalNeverServicedEvenWhenIdle) {
  sim::Simulation simulation(7);
  sim::Network net(simulation, {});
  ToyHost host(net, 2, {});

  simulation.run_for(100);  // advance the clock past the deadline
  host.deliver(make_msg(0, /*deadline=*/50));
  simulation.run_for(sim_ms(1));

  EXPECT_TRUE(host.serviced.empty());
  EXPECT_EQ(host.shed_deadline(), 1u);
}

TEST(IngressQueue, ResponsesAreNeverShed) {
  sim::Simulation simulation(7);
  sim::Network net(simulation, {});
  sim::HostConfig cfg;
  cfg.max_ingress_queue = 1;
  ToyHost host(net, 2, cfg);

  host.deliver(make_msg(0));  // on the CPU (leaves the queue immediately)
  host.deliver(make_msg(0));  // fills the queue (cap 1)
  host.deliver(make_msg(0));  // over the cap: shed
  EXPECT_EQ(host.shed_queue_full(), 1u);
  sim::Message resp{/*from=*/1, /*to=*/2, /*type=*/9, /*rpc_id=*/77,
                    /*is_response=*/true, ""};
  host.deliver(resp);  // responses bypass admission control
  EXPECT_EQ(host.shed_queue_full(), 1u);  // still only the request shed
  EXPECT_EQ(host.queue_depth(), 2u);      // request + response queued
}

// ---- cluster-level behavior -------------------------------------------------

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

/// Index of the data node owning `id` (ids are assigned 100, 101, ...).
std::size_t node_index(SednaCluster& cluster, NodeId id) {
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == id) return i;
  }
  ADD_FAILURE() << "no node with id " << id;
  return 0;
}

TEST(RetryBudget, ExhaustedBudgetFailsFastWithOverloaded) {
  SednaClusterConfig cfg = small_config();
  cfg.client_template.retry_budget_capacity = 2.0;
  cfg.client_template.retry_budget_refill = 0.0;  // no refill: finite fuse
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  ASSERT_TRUE(cluster.write_latest(client, "budgeted", "v").ok());
  cluster.run_for(sim_ms(50));

  // Crash the key's primary: every read now needs exactly one retry.
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("budgeted");
  ASSERT_EQ(replicas.size(), 3u);
  cluster.crash_node(node_index(cluster, replicas[0]));

  // Two tokens → two reads ride out the dead primary...
  EXPECT_TRUE(cluster.read_latest(client, "budgeted").ok());
  EXPECT_TRUE(cluster.read_latest(client, "budgeted").ok());
  // ...the third wants a retry with an empty bucket and fails fast.
  const auto third = cluster.read_latest(client, "budgeted");
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kOverloaded);
  const auto& counters = client.metrics().counters();
  const auto it = counters.find("node.shed.retry_budget");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second.value(), 1u);
}

TEST(RetryBudget, SuccessesRefillTheBucket) {
  SednaClusterConfig cfg = small_config();
  cfg.client_template.retry_budget_capacity = 1.0;
  cfg.client_template.retry_budget_refill = 0.5;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  ASSERT_TRUE(cluster.write_latest(client, "refilled", "v").ok());
  cluster.run_for(sim_ms(50));
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("refilled");
  cluster.crash_node(node_index(cluster, replicas[0]));

  // Burn the single token.
  EXPECT_TRUE(cluster.read_latest(client, "refilled").ok());
  // Two successes elsewhere refill 2 × 0.5 = 1 token.
  ASSERT_TRUE(cluster.write_latest(client, "other-a", "v").ok());
  ASSERT_TRUE(cluster.write_latest(client, "other-b", "v").ok());
  // The refilled token funds one more retry through the dead primary.
  EXPECT_TRUE(cluster.read_latest(client, "refilled").ok());
}

TEST(DegradedReads, MinorityCoordinatorServesStaleTaggedRead) {
  SednaClusterConfig cfg = small_config();
  cfg.node_template.degraded_reads = true;
  cfg.node_template.host.rpc_timeout_us = 20'000;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  ASSERT_TRUE(cluster.write_latest(client, "stale-ok", "v1").ok());
  cluster.run_for(sim_ms(50));

  // Strand the primary away from both other replicas: below read quorum,
  // but it still holds a copy.
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("stale-ok");
  ASSERT_EQ(replicas.size(), 3u);
  cluster.network().partition(replicas[0], replicas[1]);
  cluster.network().partition(replicas[0], replicas[2]);

  const auto got = cluster.read_latest(client, "stale-ok");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v1");
  const auto& counters = client.metrics().counters();
  const auto it = counters.find("client.stale_reads");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second.value(), 1u);
}

TEST(DegradedReads, BelowQuorumFallbackIsTaggedStaleEvenWhenDisabled) {
  // degraded_reads only gates the *early* settle; the long-standing
  // all-responded fallback (serve the freshest reply when a quorum is
  // impossible) must now label its answers honestly either way.
  SednaClusterConfig cfg = small_config();  // degraded_reads defaults off
  cfg.node_template.host.rpc_timeout_us = 20'000;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  ASSERT_TRUE(cluster.write_latest(client, "strict", "v1").ok());
  cluster.run_for(sim_ms(50));
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("strict");
  // Cut every inter-replica link: no coordinator can reach a quorum.
  for (std::size_t a = 0; a < replicas.size(); ++a) {
    for (std::size_t b = a + 1; b < replicas.size(); ++b) {
      cluster.network().partition(replicas[a], replicas[b]);
    }
  }
  const auto got = cluster.read_latest(client, "strict");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v1");
  const auto& counters = client.metrics().counters();
  const auto it = counters.find("client.stale_reads");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second.value(), 1u);
}

// ---- retry-storm metastability (miniature) ----------------------------------

/// Mini version of bench/scenario_suite.cc's ablation: a demand pulse
/// over cluster capacity. With the defenses off, 3-attempt retry
/// amplification keeps post-pulse demand above capacity and goodput never
/// recovers; with them on, the pulse is shed and the cluster returns to
/// its pre-pulse goodput.
double late_over_pre_goodput(bool defenses_on) {
  SednaClusterConfig cfg = small_config();
  cfg.data_nodes = 3;
  cfg.cluster.total_vnodes = 64;
  cfg.node_template.host.base_service_us = 400;  // ~1.2k reads/s capacity
  cfg.client_template.host.base_service_us = 8;
  cfg.client_template.op_timeout_us = 30'000;
  cfg.client_template.max_attempts = 3;
  if (defenses_on) {
    cfg.node_template.host.max_ingress_queue = 64;
    cfg.node_template.degraded_reads = true;
    cfg.client_template.op_deadline_us = 90'000;
    cfg.client_template.retry_budget_capacity = 10.0;
    cfg.client_template.retry_budget_refill = 0.1;
  }
  SednaCluster cluster(cfg);
  EXPECT_TRUE(cluster.boot().ok());
  std::vector<SednaClient*> clients;
  for (int c = 0; c < 4; ++c) clients.push_back(&cluster.make_client());

  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("meta-" + std::to_string(i));
    EXPECT_TRUE(cluster.write_latest(*clients[0], keys.back(), "v").ok());
  }

  workload::OpenLoopConfig wl;
  wl.curve = {{0, 800}, {sim_sec(1), 3000}, {sim_ms(1800), 800}};
  wl.duration = sim_sec(5);
  wl.window = sim_ms(100);
  workload::OpenLoopDriver driver(
      cluster.sim(), wl,
      [&](std::uint64_t seq, const std::function<void(bool)>& done) {
        const auto& key = keys[cluster.sim().rng().next_below(keys.size())];
        clients[seq % clients.size()]->read_latest(
            key,
            [done](const Result<store::VersionedValue>& r) { done(r.ok()); });
      });
  driver.start();
  cluster.run_for(sim_sec(5) + sim_ms(300));

  const double pre = driver.mean_goodput(5, 10);    // 0.5 s – 1.0 s
  const double late = driver.mean_goodput(40, 50);  // 4.0 s – 5.0 s
  return pre > 0 ? late / pre : 0.0;
}

TEST(Metastability, DefensesOnRecoversAfterPulse) {
  EXPECT_GE(late_over_pre_goodput(true), 0.8);
}

TEST(Metastability, DefensesOffStaysCollapsed) {
  EXPECT_LE(late_over_pre_goodput(false), 0.5);
}

}  // namespace
}  // namespace sedna::cluster
