// End-to-end tests of the simulated Sedna deployment: boot, quorum
// reads/writes, write_all value lists, node failure + read-triggered
// recovery, runtime join, and client routing.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  cfg.cluster.replicas = 3;
  cfg.cluster.read_quorum = 2;
  cfg.cluster.write_quorum = 2;
  return cfg;
}

TEST(ClusterBoot, BootsAndReportsReady) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    EXPECT_TRUE(cluster.node(i).ready());
  }
}

TEST(ClusterBoot, VnodeTableCoversAllVnodesWithDataNodes) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  const auto& table = cluster.node(0).metadata().table();
  ASSERT_EQ(table.total_vnodes(), 128u);
  const auto ids = cluster.data_ids();
  for (std::uint32_t v = 0; v < table.total_vnodes(); ++v) {
    const NodeId owner = table.owner(v);
    EXPECT_NE(owner, kInvalidNode);
    EXPECT_NE(std::find(ids.begin(), ids.end(), owner), ids.end());
  }
}

TEST(ClusterDataPath, WriteThenReadLatest) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(client.ready());

  ASSERT_TRUE(cluster.write_latest(client, "hello", "world").ok());
  auto got = cluster.read_latest(client, "hello");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "world");
}

TEST(ClusterDataPath, ReadMissingKeyIsNotFound) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  auto got = cluster.read_latest(client, "never-written");
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(ClusterDataPath, OverwriteKeepsFreshest) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "k", "v1").ok());
  ASSERT_TRUE(cluster.write_latest(client, "k", "v2").ok());
  auto got = cluster.read_latest(client, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v2");
}

TEST(ClusterDataPath, WriteAllKeepsPerSourceValues) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& c1 = cluster.make_client();
  auto& c2 = cluster.make_client();

  ASSERT_TRUE(cluster.write_all(c1, "shared", "from-c1").ok());
  ASSERT_TRUE(cluster.write_all(c2, "shared", "from-c2").ok());

  auto got = cluster.read_all(c1, "shared");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 2u);
  std::vector<std::string> values;
  for (const auto& sv : got.value()) values.push_back(sv.value);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values[0], "from-c1");
  EXPECT_EQ(values[1], "from-c2");
}

TEST(ClusterDataPath, ManyKeysRoundTrip) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    ASSERT_TRUE(cluster.write_latest(client, key, "value-" +
                                     std::to_string(i)).ok());
  }
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    auto got = cluster.read_latest(client, key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got->value, "value-" + std::to_string(i));
  }
}

TEST(ClusterDataPath, DataIsTriplyReplicated) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "replicated", "x").ok());
  cluster.run_for(sim_ms(10));

  std::size_t copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).local_store().read_latest("replicated").ok()) {
      ++copies;
    }
  }
  EXPECT_EQ(copies, 3u);
}

TEST(ClusterFailure, ReadsSurviveSingleNodeCrash) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        cluster.write_latest(client, "k" + std::to_string(i), "v").ok());
  }
  cluster.crash_node(0);
  // Session expiry + routing may add latency; reads must still succeed
  // from the two surviving replicas.
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    auto got = cluster.read_latest(client, "k" + std::to_string(i));
    if (got.ok() && got->value == "v") ++ok;
  }
  EXPECT_EQ(ok, 50);
}

TEST(ClusterFailure, RecoveryRestoresReplicationFactor) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "precious", "data").ok());
  cluster.run_for(sim_ms(10));

  // Find a node holding the key and crash it.
  std::size_t victim = SIZE_MAX;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).local_store().read_latest("precious").ok()) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, SIZE_MAX);
  cluster.crash_node(victim);

  // Let the ZooKeeper session expire so the ephemeral disappears.
  cluster.run_for(sim_sec(4));

  // Touch the key: read-triggered recovery (Section III.D).
  for (int i = 0; i < 5; ++i) {
    auto got = cluster.read_latest(client, "precious");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "data");
    cluster.run_for(sim_ms(200));
  }
  // Give the async duplication task time to finish.
  cluster.run_for(sim_sec(2));

  std::size_t copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (i == victim) continue;
    if (cluster.node(i).local_store().read_latest("precious").ok()) {
      ++copies;
    }
  }
  EXPECT_GE(copies, 3u);
}

TEST(ClusterMembership, NewNodeJoinsAndTakesLoad) {
  auto cfg = small_config();
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        cluster.write_latest(client, "j" + std::to_string(i), "v").ok());
  }

  auto joined = cluster.join_new_node();
  ASSERT_TRUE(joined.ok()) << joined.status().to_string();
  cluster.run_for(sim_sec(1));

  // The joiner should now own roughly total/(n+1) vnodes.
  const auto& table =
      cluster.node(cluster.data_node_count() - 1).metadata().table();
  const auto counts = table.counts();
  const auto it = counts.find(joined.value());
  ASSERT_NE(it, counts.end());
  EXPECT_GT(it->second, 128u / 14);  // clearly nonzero share
  EXPECT_LE(it->second, 128u / 7 + 8);

  // All data still readable.
  for (int i = 0; i < 100; ++i) {
    auto got = cluster.read_latest(client, "j" + std::to_string(i));
    ASSERT_TRUE(got.ok());
  }
}

TEST(ClusterZk, EnsembleElectsSingleLeader) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  int leaders = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (cluster.zk_member(i).is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

}  // namespace
}  // namespace sedna::cluster
