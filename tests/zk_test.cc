// Tests for the ZooKeeper-lite coordination service: the znode tree,
// ensemble consensus, sessions/ephemerals, watches, leader failover and
// the adaptive-lease client cache.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "sim/network.h"
#include "sim/simulation.h"
#include "zk/zk_client.h"
#include "zk/zk_server.h"
#include "zk/znode_tree.h"

namespace sedna::zk {
namespace {

// ---- ZnodeTree unit tests ----------------------------------------------------

TEST(ZnodeTree, CreateAndGet) {
  ZnodeTree tree;
  auto created = tree.create("/a", "data", CreateMode::kPersistent, 0, 1);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value(), "/a");
  auto got = tree.get("/a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->first, "data");
  EXPECT_EQ(got->second.czxid, 1u);
  EXPECT_EQ(got->second.version, 0);
}

TEST(ZnodeTree, NestedCreateRequiresParent) {
  ZnodeTree tree;
  EXPECT_TRUE(tree.create("/a/b", "", CreateMode::kPersistent, 0, 1)
                  .status()
                  .is(StatusCode::kNotFound));
  ASSERT_TRUE(tree.create("/a", "", CreateMode::kPersistent, 0, 1).ok());
  EXPECT_TRUE(tree.create("/a/b", "", CreateMode::kPersistent, 0, 2).ok());
}

TEST(ZnodeTree, DuplicateCreateRejected) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/a", "", CreateMode::kPersistent, 0, 1).ok());
  EXPECT_TRUE(tree.create("/a", "", CreateMode::kPersistent, 0, 2)
                  .status()
                  .is(StatusCode::kAlreadyExists));
}

TEST(ZnodeTree, MalformedPathsRejected) {
  ZnodeTree tree;
  for (const char* bad : {"", "/", "a", "/a/", "//"}) {
    EXPECT_FALSE(tree.create(bad, "", CreateMode::kPersistent, 0, 1).ok())
        << bad;
  }
}

TEST(ZnodeTree, SetBumpsVersionAndChecksExpected) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/a", "v0", CreateMode::kPersistent, 0, 1).ok());
  auto s1 = tree.set("/a", "v1", 0, 2);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->version, 1);
  EXPECT_EQ(s1->mzxid, 2u);
  // Stale expected version fails.
  EXPECT_FALSE(tree.set("/a", "v2", 0, 3).ok());
  // -1 skips the check.
  EXPECT_TRUE(tree.set("/a", "v2", -1, 3).ok());
  EXPECT_EQ(tree.get("/a")->first, "v2");
}

TEST(ZnodeTree, DeleteChecksVersionAndChildren) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/a", "", CreateMode::kPersistent, 0, 1).ok());
  ASSERT_TRUE(tree.create("/a/b", "", CreateMode::kPersistent, 0, 2).ok());
  EXPECT_TRUE(tree.remove("/a", -1).is(StatusCode::kInvalidArgument));
  EXPECT_TRUE(tree.remove("/a/b", 5).is(StatusCode::kFailure));
  EXPECT_TRUE(tree.remove("/a/b", 0).ok());
  EXPECT_TRUE(tree.remove("/a", -1).ok());
  EXPECT_FALSE(tree.exists("/a").ok());
}

TEST(ZnodeTree, ChildrenSortedAndCounted) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/p", "", CreateMode::kPersistent, 0, 1).ok());
  for (const char* name : {"/p/c", "/p/a", "/p/b"}) {
    ASSERT_TRUE(tree.create(name, "", CreateMode::kPersistent, 0, 2).ok());
  }
  auto kids = tree.children("/p");
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(kids.value(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(tree.exists("/p")->num_children, 3u);
}

TEST(ZnodeTree, SequentialNamesMonotone) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/q", "", CreateMode::kPersistent, 0, 1).ok());
  auto first =
      tree.create("/q/item-", "", CreateMode::kPersistentSequential, 0, 2);
  auto second =
      tree.create("/q/item-", "", CreateMode::kPersistentSequential, 0, 3);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), "/q/item-0000000000");
  EXPECT_EQ(second.value(), "/q/item-0000000001");
  EXPECT_LT(first.value(), second.value());
}

TEST(ZnodeTree, EphemeralsTrackSessionAndCannotHaveChildren) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/e", "", CreateMode::kEphemeral, 77, 1).ok());
  EXPECT_EQ(tree.exists("/e")->ephemeral_owner, 77u);
  EXPECT_TRUE(tree.create("/e/child", "", CreateMode::kPersistent, 0, 2)
                  .status()
                  .is(StatusCode::kInvalidArgument));
}

TEST(ZnodeTree, RemoveSessionEphemerals) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/p", "", CreateMode::kPersistent, 0, 1).ok());
  ASSERT_TRUE(tree.create("/p/e1", "", CreateMode::kEphemeral, 5, 2).ok());
  ASSERT_TRUE(tree.create("/p/e2", "", CreateMode::kEphemeral, 5, 3).ok());
  ASSERT_TRUE(tree.create("/p/e3", "", CreateMode::kEphemeral, 6, 4).ok());
  const auto removed = tree.remove_session_ephemerals(5);
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_FALSE(tree.exists("/p/e1").ok());
  EXPECT_TRUE(tree.exists("/p/e3").ok());
}

TEST(ZnodeTree, SerializeDeserializeRoundTrip) {
  ZnodeTree tree;
  ASSERT_TRUE(tree.create("/a", "1", CreateMode::kPersistent, 0, 1).ok());
  ASSERT_TRUE(tree.create("/a/b", "2", CreateMode::kPersistent, 0, 2).ok());
  ASSERT_TRUE(tree.create("/a/e", "3", CreateMode::kEphemeral, 9, 3).ok());
  ASSERT_TRUE(
      tree.create("/a/s-", "", CreateMode::kPersistentSequential, 0, 4).ok());
  ASSERT_TRUE(tree.set("/a/b", "2b", -1, 5).ok());

  auto copy = ZnodeTree::deserialize(tree.serialize());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->node_count(), tree.node_count());
  EXPECT_EQ(copy->get("/a/b")->first, "2b");
  EXPECT_EQ(copy->get("/a/b")->second.version, 1);
  EXPECT_EQ(copy->get("/a/e")->second.ephemeral_owner, 9u);
  // Sequence counters must survive: the next sequential name continues.
  auto next =
      copy->create("/a/s-", "", CreateMode::kPersistentSequential, 0, 6);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), "/a/s-0000000001");
}

TEST(ZnodeTree, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ZnodeTree::deserialize("garbage").ok());
}

// ---- Ensemble fixture -----------------------------------------------------------

class ClientHost : public sim::Host {
 public:
  ClientHost(sim::Network& net, NodeId id, std::vector<NodeId> ensemble,
             ZkClientConfig cfg = {})
      : sim::Host(net, id), zk_(*this, [&] {
          cfg.ensemble = std::move(ensemble);
          return cfg;
        }()) {}
  ZkClient& zk() { return zk_; }

 protected:
  void on_message(const sim::Message& msg) override {
    if (msg.type == kMsgWatchEvent) zk_.on_watch_event(msg.payload);
  }

 private:
  ZkClient zk_;
};

class EnsembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulation>(17);
    net_ = std::make_unique<sim::Network>(*sim_);
    ZkServerConfig cfg;
    cfg.ensemble = {0, 1, 2};
    for (NodeId id : cfg.ensemble) {
      servers_.push_back(std::make_unique<ZkServer>(*net_, id, cfg));
      servers_.back()->start();
    }
    sim_->run_for(sim_ms(5));
    client_ = std::make_unique<ClientHost>(*net_, 100,
                                           std::vector<NodeId>{0, 1, 2});
    connect(*client_);
  }

  void connect(ClientHost& host) {
    std::optional<Status> st;
    host.zk().connect([&](const Status& s) { st = s; });
    run_until([&] { return st.has_value(); });
    ASSERT_TRUE(st.has_value() && st->ok());
  }

  void run_until(const std::function<bool()>& pred) {
    const SimTime deadline = sim_->now() + sim_sec(120);
    while (!pred() && sim_->now() < deadline && sim_->pending_events() > 0) {
      sim_->step();
    }
  }

  Status create_sync(ZkClient& zk, const std::string& path,
                     const std::string& data,
                     CreateMode mode = CreateMode::kPersistent,
                     std::string* actual = nullptr) {
    std::optional<Status> st;
    zk.create(path, data, mode, [&](const Result<std::string>& r) {
      if (r.ok() && actual != nullptr) *actual = r.value();
      st = r.status();
    });
    run_until([&] { return st.has_value(); });
    return st.value_or(Status::Timeout());
  }

  Result<std::pair<std::string, ZnodeStat>> get_sync(
      ZkClient& zk, const std::string& path) {
    std::optional<Result<std::pair<std::string, ZnodeStat>>> out;
    zk.get(path, [&](const auto& r) { out = r; });
    run_until([&] { return out.has_value(); });
    if (!out.has_value()) return Status::Timeout();
    return *out;
  }

  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<ZkServer>> servers_;
  std::unique_ptr<ClientHost> client_;
};

TEST_F(EnsembleTest, SingleLeaderElected) {
  int leaders = 0;
  for (const auto& s : servers_) {
    if (s->is_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_TRUE(servers_[0]->is_leader());  // lowest live id leads
}

TEST_F(EnsembleTest, WriteReplicatesToAllMembers) {
  ASSERT_TRUE(create_sync(client_->zk(), "/x", "payload").ok());
  sim_->run_for(sim_ms(50));  // let commits propagate to followers
  for (const auto& s : servers_) {
    auto got = s->tree().get("/x");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->first, "payload");
  }
}

TEST_F(EnsembleTest, CommitsApplyInOrderOnFollowers) {
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(create_sync(client_->zk(), "/n" + std::to_string(i),
                            std::to_string(i)).ok());
  }
  sim_->run_for(sim_ms(100));
  for (const auto& s : servers_) {
    EXPECT_EQ(s->last_applied_zxid(), servers_[0]->last_applied_zxid());
    EXPECT_EQ(s->tree().node_count(), servers_[0]->tree().node_count());
  }
}

TEST_F(EnsembleTest, SessionExpiryRemovesEphemerals) {
  ZkClientConfig cfg;
  cfg.session_timeout = sim_ms(800);
  cfg.ping_interval = sim_ms(200);
  auto ephemeral_owner = std::make_unique<ClientHost>(
      *net_, 101, std::vector<NodeId>{0, 1, 2}, cfg);
  connect(*ephemeral_owner);
  ASSERT_TRUE(create_sync(ephemeral_owner->zk(), "/live", "",
                          CreateMode::kEphemeral).ok());

  // While the owner pings, the node persists.
  sim_->run_for(sim_sec(3));
  EXPECT_TRUE(get_sync(client_->zk(), "/live").ok());

  // Crash the owner: pings stop, the session expires, the znode goes.
  ephemeral_owner->crash();
  sim_->run_for(sim_sec(4));
  EXPECT_TRUE(get_sync(client_->zk(), "/live")
                  .status()
                  .is(StatusCode::kNotFound));
}

TEST_F(EnsembleTest, DataWatchFiresOnceOnChange) {
  ASSERT_TRUE(create_sync(client_->zk(), "/w", "v0").ok());
  int events = 0;
  std::optional<Result<std::pair<std::string, ZnodeStat>>> got;
  client_->zk().get_and_watch(
      "/w", [&](const auto& r) { got = r; },
      [&](const WatchEventMsg& ev) {
        ++events;
        EXPECT_EQ(ev.path, "/w");
        EXPECT_EQ(ev.type, WatchEventType::kDataChanged);
      });
  run_until([&] { return got.has_value(); });

  std::optional<Result<ZnodeStat>> set1;
  client_->zk().set("/w", "v1", -1, [&](const auto& r) { set1 = r; });
  run_until([&] { return set1.has_value(); });
  std::optional<Result<ZnodeStat>> set2;
  client_->zk().set("/w", "v2", -1, [&](const auto& r) { set2 = r; });
  run_until([&] { return set2.has_value(); });
  sim_->run_for(sim_ms(50));

  EXPECT_EQ(events, 1);  // one-shot, like ZooKeeper
}

TEST_F(EnsembleTest, ChildWatchFiresOnNewChild) {
  ASSERT_TRUE(create_sync(client_->zk(), "/dir", "").ok());
  int events = 0;
  std::optional<Result<std::vector<std::string>>> kids;
  client_->zk().children_and_watch(
      "/dir", [&](const auto& r) { kids = r; },
      [&](const WatchEventMsg& ev) {
        ++events;
        EXPECT_EQ(ev.type, WatchEventType::kChildrenChanged);
      });
  run_until([&] { return kids.has_value(); });
  ASSERT_TRUE(create_sync(client_->zk(), "/dir/kid", "").ok());
  sim_->run_for(sim_ms(50));
  EXPECT_EQ(events, 1);
}

TEST_F(EnsembleTest, ReadsServedByFollowersToo) {
  ASSERT_TRUE(create_sync(client_->zk(), "/r", "v").ok());
  sim_->run_for(sim_ms(50));
  // Force the client to a specific follower by making it the only member
  // it knows.
  auto follower_client = std::make_unique<ClientHost>(
      *net_, 102, std::vector<NodeId>{2});
  connect(*follower_client);
  auto got = get_sync(follower_client->zk(), "/r");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->first, "v");
}

TEST_F(EnsembleTest, LeaderFailoverElectsNextAndServesWrites) {
  ASSERT_TRUE(create_sync(client_->zk(), "/before", "x").ok());
  servers_[0]->crash();
  sim_->run_for(sim_sec(2));  // peer timeout + new leader sync

  EXPECT_TRUE(servers_[1]->is_leader());
  EXPECT_FALSE(servers_[2]->is_leader());

  // Writes continue against the new leader.
  ASSERT_TRUE(create_sync(client_->zk(), "/after", "y").ok());
  sim_->run_for(sim_ms(100));
  EXPECT_TRUE(servers_[1]->tree().get("/before").ok());
  EXPECT_TRUE(servers_[1]->tree().get("/after").ok());
  EXPECT_TRUE(servers_[2]->tree().get("/after").ok());
}

TEST_F(EnsembleTest, SessionsSurviveLeaderFailover) {
  ZkClientConfig cfg;
  cfg.session_timeout = sim_sec(2);
  cfg.ping_interval = sim_ms(300);
  auto owner = std::make_unique<ClientHost>(
      *net_, 103, std::vector<NodeId>{0, 1, 2}, cfg);
  connect(*owner);
  ASSERT_TRUE(create_sync(owner->zk(), "/surviving", "",
                          CreateMode::kEphemeral).ok());

  servers_[0]->crash();
  sim_->run_for(sim_sec(4));  // leader failover + several ping cycles

  // The session table was replicated; pings now reach the new leader and
  // the ephemeral is still there.
  EXPECT_TRUE(get_sync(client_->zk(), "/surviving").ok());
}

TEST_F(EnsembleTest, RestartedFollowerResyncsFullTree) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(create_sync(client_->zk(), "/k" + std::to_string(i), "v")
                    .ok());
  }
  servers_[2]->crash();
  for (int i = 10; i < 20; ++i) {
    ASSERT_TRUE(create_sync(client_->zk(), "/k" + std::to_string(i), "v")
                    .ok());
  }
  servers_[2]->restart();
  sim_->run_for(sim_sec(2));  // tree-sync request + transfer

  EXPECT_EQ(servers_[2]->tree().node_count(),
            servers_[0]->tree().node_count());
  EXPECT_TRUE(servers_[2]->tree().get("/k15").ok());
}

TEST_F(EnsembleTest, ClientFailsOverBetweenMembers) {
  // A client talking to a crashed member retries the next one.
  servers_[0]->crash();
  sim_->run_for(sim_sec(2));
  auto fresh = std::make_unique<ClientHost>(
      *net_, 104, std::vector<NodeId>{0, 1, 2});  // first target is dead
  connect(*fresh);
  EXPECT_TRUE(create_sync(fresh->zk(), "/via-failover", "v").ok());
}

TEST_F(EnsembleTest, VersionedSetConflictDetected) {
  ASSERT_TRUE(create_sync(client_->zk(), "/cas", "v0").ok());
  auto got = get_sync(client_->zk(), "/cas");
  ASSERT_TRUE(got.ok());
  // First CAS with the observed version wins...
  std::optional<Result<ZnodeStat>> s1;
  client_->zk().set("/cas", "v1", got->second.version,
                    [&](const auto& r) { s1 = r; });
  run_until([&] { return s1.has_value(); });
  ASSERT_TRUE(s1->ok());
  // ...the second with the same stale version loses.
  std::optional<Result<ZnodeStat>> s2;
  client_->zk().set("/cas", "v2", got->second.version,
                    [&](const auto& r) { s2 = r; });
  run_until([&] { return s2.has_value(); });
  EXPECT_FALSE(s2->ok());
}

// ---- lease cache ------------------------------------------------------------------

TEST_F(EnsembleTest, CachedGetServesFromCacheWithinLease) {
  ASSERT_TRUE(create_sync(client_->zk(), "/cached", "v").ok());
  auto& zk = client_->zk();
  std::optional<bool> first_done;
  zk.cached_get("/cached", [&](const auto&) { first_done = true; });
  run_until([&] { return first_done.has_value(); });

  const auto requests_before = zk.requests_sent();
  std::optional<bool> second_done;
  zk.cached_get("/cached", [&](const auto&) { second_done = true; });
  EXPECT_TRUE(second_done.has_value());  // synchronous cache hit
  EXPECT_EQ(zk.requests_sent(), requests_before);
  EXPECT_GE(zk.cache_hits(), 1u);
}

TEST_F(EnsembleTest, CacheExpiresAfterLease) {
  ASSERT_TRUE(create_sync(client_->zk(), "/lease", "v1").ok());
  auto& zk = client_->zk();
  std::optional<bool> warm;
  zk.cached_get("/lease", [&](const auto&) { warm = true; });
  run_until([&] { return warm.has_value(); });

  // Change the data and advance beyond the lease.
  std::optional<Result<ZnodeStat>> set_done;
  zk.set("/lease", "v2", -1, [&](const auto& r) { set_done = r; });
  run_until([&] { return set_done.has_value(); });
  sim_->run_for(zk.current_lease() + sim_ms(1));

  std::optional<std::string> value;
  zk.cached_get("/lease", [&](const auto& r) {
    if (r.ok()) value = r.value().first;
  });
  run_until([&] { return value.has_value(); });
  EXPECT_EQ(*value, "v2");
}

TEST(AdaptiveLease, HalvesWhenBusyDoublesWhenQuiet) {
  sim::Simulation sim;
  sim::Network net(sim);
  ClientHost host(net, 1, {0});
  auto& zk = host.zk();
  const SimDuration initial = zk.current_lease();

  zk.note_sync_changes(10);  // busy
  EXPECT_EQ(zk.current_lease(), initial / 2);
  zk.note_sync_changes(0);  // quiet
  EXPECT_EQ(zk.current_lease(), initial);
  zk.note_sync_changes(0);
  EXPECT_EQ(zk.current_lease(), initial * 2);
}

TEST(AdaptiveLease, ClampsToConfiguredBounds) {
  sim::Simulation sim;
  sim::Network net(sim);
  ZkClientConfig cfg;
  cfg.lease_initial = sim_ms(500);
  cfg.lease_min = sim_ms(250);
  cfg.lease_max = sim_ms(1000);
  ClientHost host(net, 1, {0}, cfg);
  auto& zk = host.zk();
  for (int i = 0; i < 10; ++i) zk.note_sync_changes(100);
  EXPECT_EQ(zk.current_lease(), sim_ms(250));
  for (int i = 0; i < 10; ++i) zk.note_sync_changes(0);
  EXPECT_EQ(zk.current_lease(), sim_ms(1000));
}

}  // namespace
}  // namespace sedna::zk
