// Tests for per-vnode status tracking (paper Section III.B) and the
// ClusterInspector operational snapshot.
#include <gtest/gtest.h>

#include "cluster/admin.h"
#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

TEST(VnodeStatus, WritesAndReadsAttributeToTheRightVnode) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "hot-key", "v").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.read_latest(client, "hot-key").ok());
  }
  cluster.run_for(sim_ms(50));

  const VnodeId vnode =
      cluster.node(0).metadata().table().vnode_for_key("hot-key");
  std::uint64_t writes = 0, reads = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    const auto& status = cluster.node(i).vnode_status();
    if (vnode < status.size()) {
      writes += status[vnode].writes;
      reads += status[vnode].reads;
    }
  }
  EXPECT_EQ(writes, 3u);   // one write applied on each of 3 replicas
  EXPECT_GE(reads, 10u);   // every quorum read touches >= R replicas
}

TEST(VnodeStatus, UntouchedVnodesStayZero) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "single", "v").ok());
  cluster.run_for(sim_ms(50));

  const VnodeId touched =
      cluster.node(0).metadata().table().vnode_for_key("single");
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    const auto& status = cluster.node(i).vnode_status();
    for (std::size_t v = 0; v < status.size(); ++v) {
      if (static_cast<VnodeId>(v) == touched) continue;
      EXPECT_EQ(status[v].writes, 0u) << "node " << i << " vnode " << v;
    }
  }
}

TEST(Inspector, SnapshotAggregatesStorageAndLiveness) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "k" + std::to_string(i),
                                     "value").ok());
  }
  cluster.run_for(sim_ms(50));

  ClusterInspector inspector(cluster);
  const ClusterReport report = inspector.snapshot();
  ASSERT_EQ(report.nodes.size(), 6u);
  EXPECT_EQ(report.total_items, 300u);  // 100 keys x 3 replicas
  EXPECT_GT(report.total_bytes, 0u);
  EXPECT_EQ(report.zk_leader, 0u);
  EXPECT_GT(report.zk_commits, 0u);
  EXPECT_GE(report.zk_sessions, 7u);  // 6 nodes + client
  EXPECT_LT(report.vnode_imbalance, 0.05);
  for (const auto& n : report.nodes) {
    EXPECT_TRUE(n.alive);
    EXPECT_TRUE(n.ready);
    EXPECT_GT(n.vnodes, 0u);
  }
  EXPECT_FALSE(report.hottest.empty());
}

TEST(Inspector, ReflectsCrashes) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  cluster.crash_node(2);
  const ClusterReport report = ClusterInspector(cluster).snapshot();
  int dead = 0;
  for (const auto& n : report.nodes) {
    if (!n.alive) ++dead;
  }
  EXPECT_EQ(dead, 1);
}

TEST(Inspector, HottestVnodesRankByAccess) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "warm", "v").ok());
  ASSERT_TRUE(cluster.write_latest(client, "scorching", "v").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.read_latest(client, "scorching").ok());
  }
  cluster.run_for(sim_ms(50));

  const ClusterReport report = ClusterInspector(cluster).snapshot(2);
  ASSERT_FALSE(report.hottest.empty());
  const VnodeId expected =
      cluster.node(0).metadata().table().vnode_for_key("scorching");
  EXPECT_EQ(report.hottest[0].vnode, expected);
  if (report.hottest.size() > 1) {
    EXPECT_GE(report.hottest[0].accesses, report.hottest[1].accesses);
  }
}

TEST(Inspector, PrintProducesOutput) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ClusterInspector(cluster).print(sink);
  EXPECT_GT(std::ftell(sink), 200L);
  std::fclose(sink);
}

}  // namespace
}  // namespace sedna::cluster
