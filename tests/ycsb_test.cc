// Unit tests for the YCSB-style workload generator.
#include <gtest/gtest.h>
#include <set>

#include <map>

#include "workload/ycsb.h"

namespace sedna::workload {
namespace {

std::map<YcsbOp::Kind, int> tally(YcsbMix mix, int n) {
  YcsbConfig cfg;
  cfg.mix = mix;
  YcsbWorkload wl(cfg);
  std::map<YcsbOp::Kind, int> counts;
  for (int i = 0; i < n; ++i) ++counts[wl.next().kind];
  return counts;
}

TEST(Ycsb, MixARoughlyHalfUpdates) {
  const auto counts = tally(YcsbMix::kA, 10000);
  EXPECT_NEAR(counts.at(YcsbOp::Kind::kUpdate), 5000, 300);
  EXPECT_EQ(counts.count(YcsbOp::Kind::kInsert), 0u);
}

TEST(Ycsb, MixBFivePercentUpdates) {
  const auto counts = tally(YcsbMix::kB, 10000);
  EXPECT_NEAR(counts.at(YcsbOp::Kind::kUpdate), 500, 150);
}

TEST(Ycsb, MixCReadOnly) {
  const auto counts = tally(YcsbMix::kC, 10000);
  EXPECT_EQ(counts.at(YcsbOp::Kind::kRead), 10000);
}

TEST(Ycsb, MixDInsertsGrowTheKeySpace) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kD;
  cfg.records = 100;
  YcsbWorkload wl(cfg);
  std::set<std::string> inserted_keys;
  int inserts = 0;
  for (int i = 0; i < 5000; ++i) {
    const YcsbOp op = wl.next();
    if (op.kind == YcsbOp::Kind::kInsert) {
      // Every insert targets a brand-new key beyond the preload.
      EXPECT_TRUE(inserted_keys.insert(op.key).second);
      ++inserts;
    }
  }
  EXPECT_GT(inserts, 150);
}

TEST(Ycsb, ReadsAreZipfSkewed) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kC;
  YcsbWorkload wl(cfg);
  std::map<std::string, int> freq;
  for (int i = 0; i < 20000; ++i) ++freq[wl.next().key];
  int hottest = 0;
  for (const auto& [key, n] : freq) hottest = std::max(hottest, n);
  // zipf 0.99 over 2000 records: head key gets far more than uniform's 10.
  EXPECT_GT(hottest, 500);
}

TEST(Ycsb, DeterministicPerSeed) {
  YcsbConfig cfg;
  cfg.mix = YcsbMix::kA;
  YcsbWorkload a(cfg), b(cfg);
  for (int i = 0; i < 1000; ++i) {
    const YcsbOp oa = a.next();
    const YcsbOp ob = b.next();
    EXPECT_EQ(oa.kind, ob.kind);
    EXPECT_EQ(oa.key, ob.key);
  }
}

TEST(Ycsb, LoadKeysMatchPaperShape) {
  YcsbConfig cfg;
  YcsbWorkload wl(cfg);
  EXPECT_EQ(wl.load_key(0).substr(0, 5), "test-");
  EXPECT_EQ(wl.value().size(), 100u);
}

}  // namespace
}  // namespace sedna::workload
