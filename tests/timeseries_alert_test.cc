// Telemetry layer: time-series recorder interval/wrap semantics, alert
// fire/resolve hysteresis, the per-node health state machine on a live
// cluster, SpaceSaving heavy-hitter accuracy under Zipf skew, per-vnode
// byte accounting, and Prometheus label escaping.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/monitor.h"
#include "cluster/sedna_cluster.h"
#include "common/hash.h"
#include "common/heavy_hitters.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "store/local_store.h"

namespace sedna {
namespace {

// ---- TimeSeriesRecorder -----------------------------------------------------

TEST(TimeSeriesRecorder, SamplesRegisteredSeriesAndExportsCsv) {
  TimeSeriesRecorder rec(16);
  double a = 1.0, b = 10.0;
  EXPECT_EQ(rec.add_series("alpha", [&] { return a; }), 0u);
  EXPECT_EQ(rec.add_series("beta", [&] { return b; }), 1u);

  rec.sample(sim_ms(500));
  a = 2.5;
  b = 20.0;
  rec.sample(sim_ms(1000));

  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.total_samples(), 2u);
  EXPECT_EQ(rec.time_at(0), sim_ms(500));
  EXPECT_EQ(rec.time_at(1), sim_ms(1000));
  EXPECT_DOUBLE_EQ(rec.value_at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(rec.value_at(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(rec.value_at(1, 1), 20.0);

  EXPECT_EQ(rec.series_index("beta"), 1u);
  EXPECT_EQ(rec.series_index("nope"), TimeSeriesRecorder::npos);

  const std::string csv = rec.csv();
  EXPECT_EQ(csv,
            "time_us,alpha,beta\n"
            "500000,1,10\n"
            "1000000,2.5,20\n");
}

TEST(TimeSeriesRecorder, RingWrapKeepsNewestSamplesInOrder) {
  TimeSeriesRecorder rec(4);
  double v = 0;
  rec.add_series("v", [&] { return v; });
  for (int i = 1; i <= 10; ++i) {
    v = i;
    rec.sample(sim_ms(100 * i));
  }
  ASSERT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_samples(), 10u);
  // Oldest retained sample is #7; rows stay chronological after wrap.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rec.time_at(i), sim_ms(100 * (7 + i)));
    EXPECT_DOUBLE_EQ(rec.value_at(i, 0), static_cast<double>(7 + i));
  }
}

// ---- AlertEngine ------------------------------------------------------------

TEST(AlertEngine, FiresAfterForSamplesAndResolvesAfterClearSamples) {
  TimeSeriesRecorder rec(32);
  double v = 0;
  rec.add_series("load", [&] { return v; });

  AlertEngine alerts;
  alerts.add_rule({"hot", "load", AlertOp::kGreaterThan, 5.0,
                   /*for_samples=*/2, /*clear_samples=*/2, "warning"});

  auto step = [&](double value, SimTime at) {
    v = value;
    rec.sample(at);
    alerts.evaluate(rec, at);
  };

  step(9, sim_ms(100));  // first breach: pending, not yet firing
  EXPECT_EQ(alerts.state("hot"), AlertState::kPending);
  EXPECT_TRUE(alerts.events().empty());

  step(9, sim_ms(200));  // second consecutive breach: fires
  EXPECT_TRUE(alerts.firing("hot"));
  ASSERT_EQ(alerts.events().size(), 1u);
  EXPECT_TRUE(alerts.events()[0].fired);
  EXPECT_EQ(alerts.events()[0].at, sim_ms(200));

  step(1, sim_ms(300));  // one clean sample: hysteresis holds it firing
  EXPECT_TRUE(alerts.firing("hot"));

  step(9, sim_ms(400));  // breach again: clear streak resets
  step(1, sim_ms(500));
  EXPECT_TRUE(alerts.firing("hot"));

  step(1, sim_ms(600));  // second consecutive clean sample: resolves
  EXPECT_FALSE(alerts.firing("hot"));
  ASSERT_EQ(alerts.events().size(), 2u);
  EXPECT_FALSE(alerts.events()[1].fired);
  EXPECT_EQ(alerts.events()[1].at, sim_ms(600));

  const std::string text = alerts.text();
  EXPECT_NE(text.find("FIRING"), std::string::npos);
  EXPECT_NE(text.find("RESOLVED"), std::string::npos);
  EXPECT_NE(text.find("hot"), std::string::npos);
}

TEST(AlertEngine, InterruptedBreachStreakNeverFires) {
  TimeSeriesRecorder rec(32);
  double v = 0;
  rec.add_series("load", [&] { return v; });
  AlertEngine alerts;
  alerts.add_rule({"hot", "load", AlertOp::kGreaterThan, 5.0,
                   /*for_samples=*/3, /*clear_samples=*/1, "warning"});
  const double pattern[] = {9, 9, 1, 9, 9, 1, 9, 9, 1};
  SimTime t = 0;
  for (const double value : pattern) {
    v = value;
    t += sim_ms(100);
    rec.sample(t);
    alerts.evaluate(rec, t);
  }
  EXPECT_EQ(alerts.state("hot"), AlertState::kInactive);
  EXPECT_TRUE(alerts.events().empty());
}

TEST(AlertEngine, LessThanRuleWatchesFloors) {
  TimeSeriesRecorder rec(8);
  double v = 10;
  rec.add_series("replicas", [&] { return v; });
  AlertEngine alerts;
  alerts.add_rule({"under-replicated", "replicas", AlertOp::kLessThan, 3.0,
                   /*for_samples=*/1, /*clear_samples=*/1, "critical"});
  rec.sample(sim_ms(100));
  alerts.evaluate(rec, sim_ms(100));
  EXPECT_FALSE(alerts.firing("under-replicated"));
  v = 2;
  rec.sample(sim_ms(200));
  alerts.evaluate(rec, sim_ms(200));
  EXPECT_TRUE(alerts.firing("under-replicated"));
  EXPECT_EQ(alerts.firing_count(), 1u);
}

// ---- SpaceSaving heavy hitters ---------------------------------------------

TEST(SpaceSavingSketch, RecoversZipfTopKeysExactly) {
  constexpr std::size_t kUniverse = 1000;
  constexpr std::size_t kSamples = 20000;
  constexpr std::size_t kTop = 8;

  auto key_of = [](std::size_t i) { return "key-" + std::to_string(i); };

  ZipfGenerator zipf(kUniverse, 1.2, 42);
  SpaceSavingSketch sketch(64);
  std::map<std::string, std::uint64_t> exact;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::string key = key_of(zipf.next());
    sketch.record(key);
    ++exact[key];
  }
  EXPECT_EQ(sketch.total(), kSamples);
  EXPECT_LE(sketch.tracked(), 64u);

  // Exact top-8 with the sketch's tie order (count desc, key asc).
  std::vector<std::pair<std::string, std::uint64_t>> truth(exact.begin(),
                                                           exact.end());
  std::sort(truth.begin(), truth.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  truth.resize(kTop);

  const auto top = sketch.top(kTop);
  ASSERT_EQ(top.size(), kTop);
  std::set<std::string> truth_keys, sketch_keys;
  for (const auto& [key, count] : truth) truth_keys.insert(key);
  for (const auto& e : top) sketch_keys.insert(e.key);
  EXPECT_EQ(sketch_keys, truth_keys);

  // SpaceSaving guarantee on everything it reports:
  //   count - error <= true count <= count.
  for (const auto& e : top) {
    const std::uint64_t true_count = exact[e.key];
    EXPECT_LE(e.count - e.error, true_count) << e.key;
    EXPECT_GE(e.count, true_count) << e.key;
  }
}

TEST(SpaceSavingSketch, EvictsMinimumAndInheritsItsFloor) {
  SpaceSavingSketch sketch(2);
  sketch.record("a");
  sketch.record("a");
  sketch.record("b");
  // Full: "c" evicts the smallest counter ("b", count 1) and inherits its
  // count as error floor.
  sketch.record("c");
  const auto entries = sketch.entries();
  ASSERT_EQ(entries.size(), 2u);
  const auto top = sketch.top(2);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "c");
  EXPECT_EQ(top[1].count, 2u);  // floor 1 + weight 1
  EXPECT_EQ(top[1].error, 1u);
}

// ---- Prometheus label escaping ---------------------------------------------

TEST(MetricsRegistry, HostileLabelValuesAreEscapedInExposition) {
  MetricRegistry inner;
  inner.counter("requests").add(3);

  MetricsRegistry registry;
  registry.attach("bad\"label\\with\nnewline", inner);
  const std::string text = registry.prometheus_text();

  // The raw quote/backslash/newline must not appear inside the label;
  // their escaped forms must.
  EXPECT_NE(text.find("node=\"bad\\\"label\\\\with\\nnewline\""),
            std::string::npos)
      << text;
  // No exposition line may be split by an unescaped label newline: every
  // line that mentions the label must also close its value on that line.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (line.find("node=\"bad") != std::string::npos) {
      EXPECT_NE(line.find("\"}"), std::string::npos) << line;
    }
    start = end + 1;
  }
}

// ---- LocalStore per-vnode byte accounting ----------------------------------

TEST(LocalStore, VnodeBytesTracksResidencyPerVnode) {
  constexpr std::uint32_t kVnodes = 8;
  store::LocalStore store;
  EXPECT_TRUE(store.vnode_bytes_all().empty());  // digests off
  store.enable_digests(kVnodes);

  const std::vector<std::string> keys = {"alpha", "bravo", "charlie",
                                         "delta", "echo"};
  for (const auto& key : keys) {
    ASSERT_TRUE(store.set(key, "0123456789").ok());
  }

  auto bytes = store.vnode_bytes_all();
  ASSERT_EQ(bytes.size(), kVnodes);
  std::uint64_t sum = 0;
  for (std::uint32_t v = 0; v < kVnodes; ++v) {
    EXPECT_EQ(bytes[v], store.vnode_bytes(v));
    sum += bytes[v];
  }
  EXPECT_GT(sum, 0u);

  // Every written key's vnode row is charged; untouched vnodes are zero.
  std::set<VnodeId> touched;
  for (const auto& key : keys) {
    touched.insert(static_cast<VnodeId>(ring_hash(key) % kVnodes));
  }
  for (std::uint32_t v = 0; v < kVnodes; ++v) {
    if (touched.count(v)) {
      EXPECT_GT(bytes[v], 0u) << "vnode " << v;
    } else {
      EXPECT_EQ(bytes[v], 0u) << "vnode " << v;
    }
  }

  // Removing a key refunds exactly its vnode; growing a value recharges.
  const VnodeId va = static_cast<VnodeId>(ring_hash("alpha") % kVnodes);
  const std::uint64_t before = store.vnode_bytes(va);
  ASSERT_TRUE(store.del("alpha").ok());
  EXPECT_LT(store.vnode_bytes(va), before);

  ASSERT_TRUE(store.set("bravo", std::string(200, 'x')).ok());
  const VnodeId vb = static_cast<VnodeId>(ring_hash("bravo") % kVnodes);
  EXPECT_GT(store.vnode_bytes(vb), bytes[vb]);

  store.clear();
  for (const std::uint64_t b : store.vnode_bytes_all()) EXPECT_EQ(b, 0u);
}

// ---- ClusterMonitor on a live cluster --------------------------------------

cluster::SednaClusterConfig small_config(std::uint64_t seed) {
  cluster::SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = seed;
  return cfg;
}

TEST(ClusterMonitor, HealthWalksSuspectDeadAndBackAndAlertsFireResolve) {
  cluster::SednaCluster cluster(small_config(11));
  ASSERT_TRUE(cluster.boot().ok());
  auto& monitor = cluster.enable_monitor();
  auto& client = cluster.make_client();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        cluster.write_latest(client, "k" + std::to_string(i), "v").ok());
  }
  cluster.run_for(sim_sec(1));
  const NodeId victim = cluster.node(1).id();
  EXPECT_EQ(monitor.health(victim), cluster::HealthState::kHealthy);
  EXPECT_FALSE(monitor.alerts().firing("heartbeat-loss"));

  cluster.crash_node(1);
  cluster.run_for(sim_sec(2));  // < dead_after: suspect, alert firing
  EXPECT_EQ(monitor.health(victim), cluster::HealthState::kSuspect);
  EXPECT_TRUE(monitor.alerts().firing("heartbeat-loss"));

  cluster.run_for(sim_sec(3));  // past dead_after
  EXPECT_EQ(monitor.health(victim), cluster::HealthState::kDead);

  cluster.restart_node(1);
  cluster.run_for(sim_sec(2));  // ready again + two clean samples
  EXPECT_EQ(monitor.health(victim), cluster::HealthState::kHealthy);
  EXPECT_FALSE(monitor.alerts().firing("heartbeat-loss"));

  // The log walks healthy -> suspect -> dead -> healthy for the victim.
  std::vector<cluster::HealthState> walk;
  for (const auto& t : monitor.health_log()) {
    if (t.node == victim) walk.push_back(t.to);
  }
  ASSERT_GE(walk.size(), 3u);
  EXPECT_EQ(walk[0], cluster::HealthState::kSuspect);
  EXPECT_EQ(walk[1], cluster::HealthState::kDead);
  EXPECT_EQ(walk.back(), cluster::HealthState::kHealthy);

  // heartbeat-loss fired exactly once and resolved exactly once.
  int fired = 0, resolved = 0;
  for (const auto& e : monitor.alerts().events()) {
    if (e.rule != "heartbeat-loss") continue;
    ++(e.fired ? fired : resolved);
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(resolved, 1);

  // Dashboard reflects all of it.
  const std::string dash = monitor.dashboard();
  EXPECT_NE(dash.find("health:"), std::string::npos);
  EXPECT_NE(dash.find("heartbeat-loss"), std::string::npos);
  EXPECT_NE(dash.find("health log:"), std::string::npos);
  const std::string csv = monitor.timeseries_csv();
  EXPECT_NE(csv.find("time_us,nodes_down,hints_pending"), std::string::npos);
}

TEST(ClusterMonitor, SurfacesAreByteDeterministicAcrossSeededRuns) {
  auto run = [](std::uint64_t seed) {
    cluster::SednaCluster cluster(small_config(seed));
    EXPECT_TRUE(cluster.boot().ok());
    auto& monitor = cluster.enable_monitor();
    auto& client = cluster.make_client();
    for (int i = 0; i < 30; ++i) {
      (void)cluster.write_latest(client, "k" + std::to_string(i), "v");
    }
    cluster.crash_node(2);
    for (int i = 0; i < 30; ++i) {
      (void)cluster.read_latest(client, "k" + std::to_string(i));
    }
    cluster.run_for(sim_sec(4));
    cluster.restart_node(2);
    cluster.run_for(sim_sec(2));
    return monitor.timeseries_csv() + "\n---\n" + monitor.dashboard() +
           "\n---\n" + monitor.alerts_text();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // different seeds genuinely diverge
}

}  // namespace
}  // namespace sedna
