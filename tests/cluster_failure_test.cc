// Failure-injection tests beyond the basic crash cases: lossy networks,
// partitions, coordinator failures, restarts, stale routing state, and
// double faults leaving the cluster degraded but available.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig base_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

TEST(LossyNetwork, OperationsSucceedViaRetries) {
  SednaClusterConfig cfg = base_config();
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  cluster.network().set_loss_prob(0.05);  // 5% of messages vanish
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    if (cluster.write_latest(client, "lossy-" + std::to_string(i),
                             "v").ok()) {
      ++ok;
    }
  }
  EXPECT_GE(ok, 95);  // retries mask almost everything

  cluster.network().set_loss_prob(0.0);
  for (int i = 0; i < 100; ++i) {
    auto got = cluster.read_latest(client, "lossy-" + std::to_string(i));
    // Anything acknowledged must be readable.
    if (got.ok()) EXPECT_EQ(got->value, "v");
  }
}

TEST(Partition, IsolatedReplicaHealsViaReadRepair) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  ASSERT_TRUE(cluster.write_latest(client, "heal-me", "v1").ok());
  cluster.run_for(sim_ms(10));

  // Find the replica set and partition one member away from the others.
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("heal-me");
  ASSERT_EQ(replicas.size(), 3u);
  for (NodeId other : replicas) {
    if (other != replicas[2]) cluster.network().partition(replicas[2], other);
  }

  // Overwrite while one replica is unreachable; W=2 still succeeds.
  ASSERT_TRUE(cluster.write_latest(client, "heal-me", "v2").ok());
  cluster.run_for(sim_ms(100));

  cluster.network().heal_all();
  // Reads now see a stale third replica; quorum answers v2 and read
  // repair backfills.
  for (int i = 0; i < 3; ++i) {
    auto got = cluster.read_latest(client, "heal-me");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "v2");
    cluster.run_for(sim_ms(50));
  }
  cluster.run_for(sim_ms(200));
  // Every replica converged to v2.
  std::size_t v2_copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto got = cluster.node(i).local_store().read_latest("heal-me");
    if (got.ok() && got->value == "v2") ++v2_copies;
  }
  EXPECT_GE(v2_copies, 3u);
}

TEST(CoordinatorCrash, ClientFailsOverToAnotherReplica) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "co", "v").ok());

  // Crash the key's primary (the client's first-choice coordinator).
  const NodeId primary =
      client.metadata().table().replicas_for_key("co")[0];
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == primary) {
      cluster.crash_node(i);
      break;
    }
  }
  // The read retries against the next replica after the timeout.
  auto got = cluster.read_latest(client, "co");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");
  EXPECT_GT(client.metrics().counter("client.read_retries").value(), 0u);
}

TEST(Restart, NodeRejoinsAndServesAgain) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "r-" + std::to_string(i),
                                     "v").ok());
  }
  cluster.crash_node(3);
  cluster.run_for(sim_sec(3));  // session expiry
  cluster.restart_node(3);
  EXPECT_TRUE(cluster.node(3).ready());

  // Everything still readable, including through the restarted node.
  for (int i = 0; i < 30; ++i) {
    auto got = cluster.read_latest(client, "r-" + std::to_string(i));
    ASSERT_TRUE(got.ok());
  }
}

TEST(DoubleFault, DegradedButMajorityDataSurvives) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "d-" + std::to_string(i),
                                     "v").ok());
  }
  // Two of six data nodes crash: a key's 3 replicas lose at most 2; with
  // R=2 a key whose surviving replica count is 1 cannot assemble a strict
  // quorum, but the freshest-value fallback still answers once all
  // survivors respond.
  cluster.crash_node(0);
  cluster.crash_node(1);
  int readable = 0;
  for (int i = 0; i < 60; ++i) {
    auto got = cluster.read_latest(client, "d-" + std::to_string(i));
    if (got.ok() && got->value == "v") ++readable;
  }
  EXPECT_EQ(readable, 60);
}

TEST(StaleRouting, ClientWithOldTableStillReaches) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "stale", "v").ok());

  // Membership changes behind the client's back.
  auto joined = cluster.join_new_node();
  ASSERT_TRUE(joined.ok());
  // Do NOT run the lease sync forward; issue the read immediately with
  // whatever the client cached. Coordinators consult their own (fresh)
  // tables, so the op still succeeds.
  auto got = cluster.read_latest(client, "stale");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v");
}

TEST(ZkOutage, DataPathKeepsWorkingOnCachedMetadata) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "zk-down", "v").ok());

  // Crash a ZooKeeper *follower*: the ensemble retains quorum and Sedna
  // nodes keep their cached tables; the data path is unaffected.
  cluster.zk_member(2).crash();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "during-" + std::to_string(i),
                                     "v").ok());
  }
  auto got = cluster.read_latest(client, "zk-down");
  ASSERT_TRUE(got.ok());
}

TEST(Journal, RecoveryPropagatesToOtherNodesViaChangeJournal) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "propagate", "v").ok());

  // Crash the primary, trigger recovery via a read, then verify *other*
  // nodes learn the reassignment through the change journal within a few
  // lease periods.
  const NodeId primary =
      cluster.node(0).metadata().table().replicas_for_key("propagate")[0];
  std::size_t victim = SIZE_MAX;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == primary) victim = i;
  }
  ASSERT_NE(victim, SIZE_MAX);
  cluster.crash_node(victim);
  cluster.run_for(sim_sec(4));  // session expiry
  (void)cluster.read_latest(client, "propagate");  // triggers recovery
  cluster.run_for(sim_sec(20));  // journal sync at the adaptive lease pace

  const VnodeId vnode =
      cluster.node(0).metadata().table().vnode_for_key("propagate");
  std::size_t synced = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (i == victim) continue;
    if (cluster.node(i).metadata().table().owner(vnode) != primary) {
      ++synced;
    }
  }
  EXPECT_GE(synced, cluster.data_node_count() - 2);
}

}  // namespace
}  // namespace sedna::cluster
