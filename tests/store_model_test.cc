// Model-based property testing: LocalStore against a trivially-correct
// in-memory oracle under long random operation sequences, parameterized
// by seed. Catches interaction bugs no example-based test enumerates.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/hash.h"
#include "common/rng.h"
#include "store/local_store.h"

namespace sedna::store {
namespace {

/// The oracle: straightforward maps with the documented semantics.
class OracleStore {
 public:
  struct Entry {
    std::optional<VersionedValue> latest;
    std::map<NodeId, SourceValue> list;
  };

  /// The store's deterministic equal-timestamp tie-break: higher value
  /// hash wins, then the lexicographically larger value — never arrival
  /// order (see value_wins_tie in store/local_store.cc).
  static bool value_wins_tie(const std::string& incoming,
                             const std::string& stored) {
    const std::uint64_t ih = fnv1a64(incoming);
    const std::uint64_t sh = fnv1a64(stored);
    if (ih != sh) return ih > sh;
    return incoming > stored;
  }

  StatusCode write_latest(const std::string& key, const std::string& value,
                          Timestamp ts) {
    auto& e = entries_[key];
    if (e.latest.has_value() && e.latest->ts >= ts) {
      if (e.latest->ts == ts && e.latest->value == value) {
        return StatusCode::kOk;  // idempotent replay
      }
      if (e.latest->ts > ts || !value_wins_tie(value, e.latest->value)) {
        return StatusCode::kOutdated;
      }
    }
    e.latest = VersionedValue{value, ts, 0};
    return StatusCode::kOk;
  }

  StatusCode write_all(const std::string& key, NodeId source,
                       const std::string& value, Timestamp ts) {
    auto& e = entries_[key];
    auto it = e.list.find(source);
    if (it != e.list.end() && it->second.ts >= ts) {
      if (it->second.ts == ts && it->second.value == value) {
        return StatusCode::kOk;
      }
      if (it->second.ts > ts || !value_wins_tie(value, it->second.value)) {
        return StatusCode::kOutdated;
      }
    }
    e.list[source] = SourceValue{source, value, ts};
    return StatusCode::kOk;
  }

  [[nodiscard]] std::optional<VersionedValue> read_latest(
      const std::string& key) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second.latest;
  }

  [[nodiscard]] std::size_t list_size(const std::string& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.list.size();
  }

  StatusCode del(const std::string& key) {
    return entries_.erase(key) > 0 ? StatusCode::kOk
                                   : StatusCode::kNotFound;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, Entry> entries_;
};

class ModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelSweep, RandomOpsAgreeWithOracle) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  LocalStoreConfig cfg;
  cfg.shards = 1 + rng.next_below(8);
  LocalStore store(cfg);
  OracleStore oracle;

  constexpr int kOps = 5000;
  constexpr int kKeySpace = 60;  // small: forces heavy interaction
  for (int i = 0; i < kOps; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(kKeySpace));
    const auto ts = static_cast<Timestamp>(1 + rng.next_below(500));
    const std::string value = "v" + std::to_string(rng.next_below(1000));
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // write_latest
        const Status got = store.write_latest(key, value, ts);
        const StatusCode want = oracle.write_latest(key, value, ts);
        ASSERT_EQ(got.code(), want)
            << "op " << i << " write_latest " << key << " ts " << ts;
        break;
      }
      case 2: {  // write_all
        const auto source = static_cast<NodeId>(rng.next_below(4));
        const Status got = store.write_all(key, source, value, ts);
        const StatusCode want = oracle.write_all(key, source, value, ts);
        ASSERT_EQ(got.code(), want)
            << "op " << i << " write_all " << key << " src " << source;
        break;
      }
      case 3: {  // read_latest
        const auto got = store.read_latest(key);
        const auto want = oracle.read_latest(key);
        if (want.has_value()) {
          ASSERT_TRUE(got.ok()) << "op " << i << " read " << key;
          EXPECT_EQ(got->value, want->value);
          EXPECT_EQ(got->ts, want->ts);
        } else {
          EXPECT_FALSE(got.ok()) << "op " << i << " read " << key;
        }
        break;
      }
      case 4: {  // delete (occasionally)
        if (rng.next_below(4) == 0) {
          const Status got = store.del(key);
          const StatusCode want = oracle.del(key);
          ASSERT_EQ(got.code(), want) << "op " << i << " del " << key;
        }
        break;
      }
    }
  }

  // Full final-state audit.
  for (const auto& [key, entry] : oracle.entries()) {
    if (entry.latest.has_value()) {
      auto got = store.read_latest(key);
      ASSERT_TRUE(got.ok()) << key;
      EXPECT_EQ(got->value, entry.latest->value) << key;
      EXPECT_EQ(got->ts, entry.latest->ts) << key;
    }
    auto list = store.read_all(key);
    if (entry.list.empty()) {
      EXPECT_FALSE(list.ok()) << key;
    } else {
      ASSERT_TRUE(list.ok()) << key;
      ASSERT_EQ(list->size(), entry.list.size()) << key;
      for (const auto& sv : list.value()) {
        const auto it = entry.list.find(sv.source);
        ASSERT_NE(it, entry.list.end()) << key;
        EXPECT_EQ(sv.value, it->second.value) << key;
        EXPECT_EQ(sv.ts, it->second.ts) << key;
      }
    }
  }
}

TEST_P(ModelSweep, AccountingNeverGoesNegativeAndTracksContent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xacc);
  LocalStore store;
  std::map<std::string, std::size_t> live_value_sizes;

  for (int i = 0; i < 3000; ++i) {
    const std::string key = "a" + std::to_string(rng.next_below(40));
    if (rng.next_below(4) == 0) {
      if (store.del(key).ok()) live_value_sizes.erase(key);
    } else {
      const std::size_t len = rng.next_below(300);
      store.set(key, std::string(len, 'x'));
      live_value_sizes[key] = len;
    }
    // bytes >= sum of live payload bytes, and slab charge >= bytes.
    std::size_t payload = 0;
    for (const auto& [k, n] : live_value_sizes) payload += n;
    EXPECT_GE(store.stats().bytes, payload);
    EXPECT_GE(store.slab_charged_bytes(), store.stats().bytes);
  }
  EXPECT_EQ(store.size(), live_value_sizes.size());
  store.clear();
  EXPECT_EQ(store.stats().bytes, 0u);
  EXPECT_EQ(store.slab_charged_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelSweep,
                         ::testing::Values(1, 7, 42, 1337, 99991, 2012),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sedna::store
