// Tests for the discrete-event substrate: event ordering, timers,
// network delivery model, failure injection, host CPU serialization and
#include <map>
#include <optional>
// the RPC layer.
#include <gtest/gtest.h>

#include "sim/host.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace sedna::sim {
namespace {

// ---- Simulation core --------------------------------------------------------

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, SameTimeEventsAreFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  auto handle = sim.schedule(10, [&] { ran = true; });
  handle.cancel();
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(handle.active());
}

TEST(Simulation, PeriodicFiresRepeatedlyUntilCancelled) {
  Simulation sim;
  int fires = 0;
  auto handle = sim.schedule_periodic(100, [&] { ++fires; });
  sim.run_until(450);
  EXPECT_EQ(fires, 4);
  handle.cancel();
  sim.run_until(1000);
  EXPECT_EQ(fires, 4);
}

TEST(Simulation, RunUntilAdvancesClockEvenWhenIdle) {
  Simulation sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulation, RunUntilDoesNotExecuteLaterEvents) {
  Simulation sim;
  bool ran = false;
  sim.schedule(100, [&] { ran = true; });
  sim.run_until(99);
  EXPECT_FALSE(ran);
  sim.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(Simulation, NestedSchedulingWorks) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(10, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulation, RunReturnsEventCountAndHonoursCap) {
  Simulation sim;
  // Self-perpetuating event chain.
  std::function<void()> chain = [&] { sim.schedule(1, chain); };
  sim.schedule(1, chain);
  EXPECT_EQ(sim.run(100), 100u);
}

TEST(Simulation, SeededRngIsDeterministic) {
  Simulation a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().next(), b.rng().next());
  }
}

// ---- Network model ------------------------------------------------------------

/// Minimal host that records incoming messages.
class SinkHost : public Host {
 public:
  using Host::Host;
  std::vector<Message> received;
  std::vector<SimTime> arrival_times;

 protected:
  void on_message(const Message& msg) override {
    received.push_back(msg);
    arrival_times.push_back(now());
  }
};

struct NetFixture {
  NetworkConfig make_quiet() {
    NetworkConfig cfg;
    cfg.jitter_frac = 0.0;  // deterministic latency for assertions
    return cfg;
  }
};

TEST(Network, DeliveryLatencyIsBasePlusTransmit) {
  Simulation sim;
  NetworkConfig cfg;
  cfg.base_latency_us = 100;
  cfg.bandwidth_bytes_per_us = 100.0;
  cfg.jitter_frac = 0.0;
  Network net(sim, cfg);
  SinkHost a(net, 1), b(net, 2);
  // wire_size = payload + 32 header bytes = 132 → transmit 1.32 us.
  a.send_oneway(2, 900, std::string(100, 'x'));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  // arrival = delivery(101) + service time; delivery happened at 101.
  EXPECT_GE(b.arrival_times[0], 101u);
  EXPECT_LT(b.arrival_times[0], 101u + 20u);
}

TEST(Network, LargerMessagesTakeLonger) {
  Simulation sim;
  NetworkConfig cfg;
  cfg.jitter_frac = 0.0;
  Network net(sim, cfg);
  SinkHost a(net, 1), b(net, 2);
  a.send_oneway(2, 900, std::string(100000, 'x'));  // 800 us transmit
  a.send_oneway(2, 901, "tiny");
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].type, 901u);  // the small one arrives first
}

TEST(Network, CrashedReceiverDropsMessages) {
  Simulation sim;
  Network net(sim);
  SinkHost a(net, 1), b(net, 2);
  b.crash();
  a.send_oneway(2, 900, "hello");
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(Network, CrashMidFlightDropsAtDelivery) {
  Simulation sim;
  Network net(sim);
  SinkHost a(net, 1), b(net, 2);
  a.send_oneway(2, 900, "hello");
  sim.schedule(1, [&] { b.crash(); });  // crash before ~120 us delivery
  sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, RestartResumesDelivery) {
  Simulation sim;
  Network net(sim);
  SinkHost a(net, 1), b(net, 2);
  b.crash();
  b.restart();
  a.send_oneway(2, 900, "hello");
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, PartitionBlocksBothDirections) {
  Simulation sim;
  Network net(sim);
  SinkHost a(net, 1), b(net, 2);
  net.partition(1, 2);
  a.send_oneway(2, 900, "x");
  b.send_oneway(1, 900, "y");
  sim.run();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  net.heal(1, 2);
  a.send_oneway(2, 900, "x");
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, LossDropsFraction) {
  Simulation sim;
  NetworkConfig cfg;
  cfg.loss_prob = 0.5;
  Network net(sim, cfg);
  SinkHost a(net, 1), b(net, 2);
  for (int i = 0; i < 1000; ++i) a.send_oneway(2, 900, "x");
  sim.run();
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
}

TEST(Network, LoopbackAlwaysDelivers) {
  Simulation sim;
  NetworkConfig cfg;
  cfg.loss_prob = 1.0;  // the wire drops everything...
  Network net(sim, cfg);
  SinkHost a(net, 1);
  a.send_oneway(1, 900, "self");  // ...but loopback bypasses it
  sim.run();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(Network, CountsBytesAndMessages) {
  Simulation sim;
  Network net(sim);
  SinkHost a(net, 1), b(net, 2);
  a.send_oneway(2, 900, "0123456789");
  sim.run();
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.bytes_sent(), 42u);  // 10 payload + 32 header
}

// ---- Host CPU + RPC --------------------------------------------------------------

TEST(Host, CpuSerializesBackToBackMessages) {
  Simulation sim;
  NetworkConfig ncfg;
  ncfg.jitter_frac = 0.0;
  Network net(sim, ncfg);
  HostConfig hcfg;
  hcfg.base_service_us = 100;
  hcfg.service_jitter_frac = 0.0;
  SinkHost a(net, 1);
  SinkHost b(net, 2, hcfg);
  a.send_oneway(2, 900, "first");
  a.send_oneway(2, 901, "second");
  sim.run();
  ASSERT_EQ(b.arrival_times.size(), 2u);
  // Both arrive on the wire ~together, but processing is serialized by
  // the 100 us CPU cost.
  EXPECT_GE(b.arrival_times[1], b.arrival_times[0] + 100);
}

/// Echo server for RPC tests.
class EchoHost : public Host {
 public:
  using Host::Host;
  bool mute = false;

 protected:
  void on_message(const Message& msg) override {
    if (!mute) reply(msg, "echo:" + msg.payload);
  }
};

TEST(Rpc, RequestResponseRoundTrip) {
  Simulation sim;
  Network net(sim);
  EchoHost server(net, 1);
  SinkHost client(net, 2);
  std::optional<std::string> response;
  client.call(1, 900, "ping",
              [&](const Status& st, const std::string& body) {
                ASSERT_TRUE(st.ok());
                response = body;
              });
  sim.run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "echo:ping");
  EXPECT_EQ(client.pending_rpcs(), 0u);
}

TEST(Rpc, TimeoutFiresWhenServerSilent) {
  Simulation sim;
  Network net(sim);
  EchoHost server(net, 1);
  server.mute = true;
  SinkHost client(net, 2);
  std::optional<Status> result;
  client.call_with_timeout(1, 900, "ping", 1000,
                           [&](const Status& st, const std::string&) {
                             result = st;
                           });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->is(StatusCode::kTimeout));
}

TEST(Rpc, TimeoutFiresWhenServerCrashed) {
  Simulation sim;
  Network net(sim);
  EchoHost server(net, 1);
  server.crash();
  SinkHost client(net, 2);
  std::optional<Status> result;
  client.call_with_timeout(1, 900, "ping", 1000,
                           [&](const Status& st, const std::string&) {
                             result = st;
                           });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->is(StatusCode::kTimeout));
}

TEST(Rpc, LateResponseAfterTimeoutIsIgnored) {
  Simulation sim;
  NetworkConfig cfg;
  cfg.base_latency_us = 2000;  // slower than the rpc timeout
  cfg.jitter_frac = 0.0;
  Network net(sim, cfg);
  EchoHost server(net, 1);
  SinkHost client(net, 2);
  int callbacks = 0;
  client.call_with_timeout(1, 900, "ping", 1000,
                           [&](const Status& st, const std::string&) {
                             ++callbacks;
                             EXPECT_TRUE(st.is(StatusCode::kTimeout));
                           });
  sim.run();
  EXPECT_EQ(callbacks, 1);  // the late echo must not double-invoke
}

TEST(Rpc, ConcurrentCallsMatchTheRightResponses) {
  Simulation sim;
  Network net(sim);
  EchoHost server(net, 1);
  SinkHost client(net, 2);
  std::map<int, std::string> responses;
  for (int i = 0; i < 20; ++i) {
    client.call(1, 900, "m" + std::to_string(i),
                [&, i](const Status& st, const std::string& body) {
                  ASSERT_TRUE(st.ok());
                  responses[i] = body;
                });
  }
  sim.run();
  ASSERT_EQ(responses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses[i], "echo:m" + std::to_string(i));
  }
}

TEST(Rpc, CrashClearsPendingCallbacks) {
  Simulation sim;
  Network net(sim);
  EchoHost server(net, 1);
  server.mute = true;
  SinkHost client(net, 2);
  bool fired = false;
  client.call(1, 900, "ping",
              [&](const Status&, const std::string&) { fired = true; });
  client.crash();
  sim.run();
  EXPECT_FALSE(fired);  // the whole host died; no stray callback
}

TEST(Rpc, DestroyedHostNeverTouchedBySim) {
  Simulation sim;
  Network net(sim);
  EchoHost server(net, 1);
  {
    SinkHost client(net, 2);
    client.call(1, 900, "ping", [](const Status&, const std::string&) {
      FAIL() << "callback on a destroyed host";
    });
  }  // client destroyed with the RPC in flight
  sim.run();  // must not crash or fire the callback
  SUCCEED();
}

}  // namespace
}  // namespace sedna::sim
