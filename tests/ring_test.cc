// Tests for partitioning: vnode table, replica placement, rebalancer
// planning properties (balance, minimal movement, determinism) and the
// imbalance table. Heavy use of TEST_P sweeps over cluster shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "ring/imbalance.h"
#include "ring/rebalancer.h"
#include "ring/vnode_table.h"

namespace sedna::ring {
namespace {

std::vector<NodeId> make_nodes(std::uint32_t n) {
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < n; ++i) nodes.push_back(100 + i);
  return nodes;
}

// ---- VnodeTable ----------------------------------------------------------------

TEST(VnodeTable, KeyMapsToStableVnode) {
  VnodeTable table(256, 3);
  const VnodeId v = table.vnode_for_key("some-key");
  EXPECT_LT(v, 256u);
  EXPECT_EQ(table.vnode_for_key("some-key"), v);
}

TEST(VnodeTable, ReplicasAreDistinctRealNodes) {
  auto table = Rebalancer::initial_assignment(128, 3, make_nodes(6));
  for (std::uint32_t v = 0; v < 128; ++v) {
    const auto replicas = table.replicas_for_vnode(v);
    ASSERT_EQ(replicas.size(), 3u);
    const std::set<NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    EXPECT_EQ(replicas[0], table.owner(v));  // r1 is the vnode's owner
  }
}

TEST(VnodeTable, ReplicaWalkIsClockwise) {
  VnodeTable table(8, 3);
  for (VnodeId v = 0; v < 8; ++v) table.assign(v, 100 + v);
  const auto replicas = table.replicas_for_vnode(6);
  EXPECT_EQ(replicas, (std::vector<NodeId>{106, 107, 100}));  // wraps
}

TEST(VnodeTable, FewerNodesThanReplicasReturnsAll) {
  auto table = Rebalancer::initial_assignment(16, 3, make_nodes(2));
  const auto replicas = table.replicas_for_key("k");
  EXPECT_EQ(replicas.size(), 2u);
}

TEST(VnodeTable, CountsSumToTotal) {
  auto table = Rebalancer::initial_assignment(100, 3, make_nodes(7));
  std::uint32_t sum = 0;
  for (const auto& [node, count] : table.counts()) sum += count;
  EXPECT_EQ(sum, 100u);
}

TEST(VnodeTable, VnodesOfInverseOfOwner) {
  auto table = Rebalancer::initial_assignment(64, 3, make_nodes(4));
  for (NodeId node : table.nodes()) {
    for (VnodeId v : table.vnodes_of(node)) {
      EXPECT_EQ(table.owner(v), node);
    }
  }
}

TEST(VnodeTable, SerializeRoundTrip) {
  auto table = Rebalancer::initial_assignment(64, 3, make_nodes(5));
  auto copy = VnodeTable::deserialize(table.serialize());
  ASSERT_TRUE(copy.ok());
  EXPECT_TRUE(copy.value() == table);
}

TEST(VnodeTable, DeserializeRejectsGarbage) {
  EXPECT_FALSE(VnodeTable::deserialize("nope").ok());
}

TEST(VnodeTable, MovedVnodesCountsDifferences) {
  VnodeTable a(8, 3), b(8, 3);
  for (VnodeId v = 0; v < 8; ++v) {
    a.assign(v, 1);
    b.assign(v, v < 3 ? 2 : 1);
  }
  EXPECT_EQ(VnodeTable::moved_vnodes(a, b), 3u);
}

// ---- Rebalancer: parameterized sweeps ---------------------------------------------

struct SweepParam {
  std::uint32_t nodes;
  std::uint32_t vnodes;
};

class RebalanceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RebalanceSweep, InitialAssignmentIsBalanced) {
  const auto [n, v] = GetParam();
  auto table = Rebalancer::initial_assignment(v, 3, make_nodes(n));
  const auto counts = table.counts();
  ASSERT_EQ(counts.size(), n);
  for (const auto& [node, count] : counts) {
    EXPECT_GE(count, v / n);
    EXPECT_LE(count, v / n + 1);
  }
}

TEST_P(RebalanceSweep, JoinLevelsLoadWithMinimalMovement) {
  const auto [n, v] = GetParam();
  auto table = Rebalancer::initial_assignment(v, 3, make_nodes(n));
  const VnodeTable before = table;
  const NodeId joiner = 999;
  const auto moves = Rebalancer::plan_join(table, joiner);
  Rebalancer::apply(table, moves);

  // Every move targets the joiner; movement equals the joiner's share.
  for (const auto& move : moves) EXPECT_EQ(move.to, joiner);
  EXPECT_EQ(VnodeTable::moved_vnodes(before, table),
            static_cast<std::uint32_t>(moves.size()));

  const auto counts = table.counts();
  const std::uint32_t target = (v + n) / (n + 1);
  const auto it = counts.find(joiner);
  ASSERT_NE(it, counts.end());
  EXPECT_GE(it->second + 1, target * 3 / 4);  // a fair share
  EXPECT_LE(it->second, target + 1);
  // Donors stay near the new average.
  for (const auto& [node, count] : counts) {
    EXPECT_GE(count + 2, v / (n + 1));
  }
}

TEST_P(RebalanceSweep, LeaveRedistributesOnlyTheLeaver) {
  const auto [n, v] = GetParam();
  if (n < 2) return;
  auto table = Rebalancer::initial_assignment(v, 3, make_nodes(n));
  const VnodeTable before = table;
  const NodeId leaver = 100;
  const auto share = table.vnodes_of(leaver).size();
  const auto moves = Rebalancer::plan_leave(table, leaver);
  Rebalancer::apply(table, moves);

  EXPECT_EQ(moves.size(), share);
  EXPECT_TRUE(table.vnodes_of(leaver).empty());
  EXPECT_EQ(VnodeTable::moved_vnodes(before, table), share);
  // Survivors stay balanced.
  const auto counts = table.counts();
  for (const auto& [node, count] : counts) {
    EXPECT_GE(count, v / n);                // at least their old share
    EXPECT_LE(count, v / (n - 1) + 2);
  }
}

TEST_P(RebalanceSweep, PlansAreDeterministic) {
  const auto [n, v] = GetParam();
  auto table = Rebalancer::initial_assignment(v, 3, make_nodes(n));
  EXPECT_EQ(Rebalancer::plan_join(table, 999),
            Rebalancer::plan_join(table, 999));
  EXPECT_EQ(Rebalancer::plan_leave(table, 100),
            Rebalancer::plan_leave(table, 100));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RebalanceSweep,
    ::testing::Values(SweepParam{2, 64}, SweepParam{4, 64},
                      SweepParam{6, 128}, SweepParam{6, 1024},
                      SweepParam{16, 1024}, SweepParam{64, 8192}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.nodes) + "_v" +
             std::to_string(info.param.vnodes);
    });

TEST(Rebalancer, JoinIntoEmptyTableClaimsEverything) {
  VnodeTable table(32, 3);  // all kInvalidNode
  const auto moves = Rebalancer::plan_join(table, 7);
  EXPECT_EQ(moves.size(), 32u);
  Rebalancer::apply(table, moves);
  EXPECT_EQ(table.vnodes_of(7).size(), 32u);
}

TEST(Rebalancer, JoinSpreadsClaimsAcrossTheRing) {
  // Consecutive claimed vnodes would poison the replica walks of their
  // predecessors (see sedna_node read-path notes); claims must scatter.
  auto table = Rebalancer::initial_assignment(128, 3, make_nodes(6));
  const auto moves = Rebalancer::plan_join(table, 999);
  ASSERT_GT(moves.size(), 4u);
  std::vector<VnodeId> claimed;
  for (const auto& move : moves) claimed.push_back(move.vnode);
  std::sort(claimed.begin(), claimed.end());
  std::uint32_t consecutive_pairs = 0;
  for (std::size_t i = 1; i < claimed.size(); ++i) {
    if (claimed[i] == claimed[i - 1] + 1) ++consecutive_pairs;
  }
  EXPECT_LE(consecutive_pairs, claimed.size() / 4);
}

TEST(Rebalancer, LeaveWithNoSurvivorsIsEmpty) {
  auto table = Rebalancer::initial_assignment(16, 3, make_nodes(1));
  EXPECT_TRUE(Rebalancer::plan_leave(table, 100).empty());
}

TEST(Rebalancer, RebalanceFlattensSkew) {
  VnodeTable table(60, 3);
  // 50 vnodes on node 1, 10 on node 2, none on node 3.
  for (VnodeId v = 0; v < 50; ++v) table.assign(v, 1);
  for (VnodeId v = 50; v < 60; ++v) table.assign(v, 2);
  table.assign(59, 3);
  const auto moves = Rebalancer::plan_rebalance(table, 1);
  Rebalancer::apply(table, moves);
  const auto counts = table.counts();
  std::uint32_t lo = UINT32_MAX, hi = 0;
  for (const auto& [node, count] : counts) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Rebalancer, RebalanceNoopWhenBalanced) {
  auto table = Rebalancer::initial_assignment(64, 3, make_nodes(4));
  EXPECT_TRUE(Rebalancer::plan_rebalance(table, 1).empty());
}

// ---- Imbalance table ---------------------------------------------------------------

TEST(Imbalance, RowCodecRoundTrip) {
  RealNodeLoad row;
  row.node = 5;
  row.vnode_count = 100;
  row.capacity_bytes = 1 << 30;
  row.reads = 12345;
  row.writes = 678;
  row.misses = 42;
  row.vnodes.push_back(VnodeLoadRow{7, 4096, 10, 20, 3});
  row.vnodes.push_back(VnodeLoadRow{200, 1 << 20, 9999, 0, 0});
  auto back = RealNodeLoad::decode(row.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node, row.node);
  EXPECT_EQ(back->capacity_bytes, row.capacity_bytes);
  EXPECT_EQ(back->writes, row.writes);
  EXPECT_EQ(back->misses, row.misses);
  ASSERT_EQ(back->vnodes.size(), 2u);
  EXPECT_EQ(back->vnodes[0], row.vnodes[0]);
  EXPECT_EQ(back->vnodes[1], row.vnodes[1]);
}

TEST(Imbalance, RowCodecRejectsTruncatedVnodeRows) {
  RealNodeLoad row;
  row.node = 1;
  row.vnodes.push_back(VnodeLoadRow{3, 100, 1, 2, 0});
  std::string encoded = row.encode();
  encoded.resize(encoded.size() - 4);  // clip the last vnode field
  EXPECT_FALSE(RealNodeLoad::decode(encoded).ok());
}

TEST(Imbalance, CoefficientIsZeroNotNanOnDegenerateInputs) {
  // No rows at all.
  ImbalanceTable empty;
  EXPECT_DOUBLE_EQ(empty.capacity_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(empty.vnode_imbalance(), 0.0);

  // A single node has nothing to be imbalanced against.
  ImbalanceTable single;
  RealNodeLoad one;
  one.node = 1;
  one.capacity_bytes = 123456;
  single.update(one);
  EXPECT_DOUBLE_EQ(single.capacity_imbalance(), 0.0);

  // All-zero loads: mean is 0, CV must come back 0, not NaN.
  ImbalanceTable zeros;
  for (NodeId n = 0; n < 4; ++n) {
    RealNodeLoad row;
    row.node = n;
    zeros.update(row);
  }
  EXPECT_DOUBLE_EQ(zeros.capacity_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(zeros.vnode_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(zeros.imbalance(&RealNodeLoad::reads), 0.0);
  EXPECT_TRUE(std::isfinite(zeros.capacity_imbalance()));
}

TEST(Imbalance, PerfectBalanceIsZero) {
  ImbalanceTable table;
  for (NodeId n = 0; n < 4; ++n) {
    RealNodeLoad row;
    row.node = n;
    row.capacity_bytes = 1000;
    row.vnode_count = 10;
    table.update(row);
  }
  EXPECT_DOUBLE_EQ(table.capacity_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(table.vnode_imbalance(), 0.0);
}

TEST(Imbalance, SkewIncreasesCoefficient) {
  ImbalanceTable balanced, skewed;
  for (NodeId n = 0; n < 4; ++n) {
    RealNodeLoad row;
    row.node = n;
    row.capacity_bytes = 1000;
    balanced.update(row);
    row.capacity_bytes = n == 0 ? 4000 : 100;
    skewed.update(row);
  }
  EXPECT_GT(skewed.capacity_imbalance(), balanced.capacity_imbalance());
  EXPECT_GT(skewed.capacity_imbalance(), 1.0);
}

TEST(Imbalance, HottestColdestIdentified) {
  ImbalanceTable table;
  for (NodeId n = 0; n < 4; ++n) {
    RealNodeLoad row;
    row.node = n;
    row.capacity_bytes = (n + 1) * 100;
    table.update(row);
  }
  const auto [hot, cold] = table.hottest_coldest();
  EXPECT_EQ(hot, 3u);
  EXPECT_EQ(cold, 0u);
}

TEST(Imbalance, RemoveDropsNode) {
  ImbalanceTable table;
  RealNodeLoad row;
  row.node = 1;
  table.update(row);
  EXPECT_EQ(table.rows().size(), 1u);
  table.remove(1);
  EXPECT_TRUE(table.rows().empty());
}

}  // namespace
}  // namespace sedna::ring
