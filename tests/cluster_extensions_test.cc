// Tests for the production-hardening extensions: vnode purge after
// handoff, the imbalance-driven rebalance daemon, and batch client APIs.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig base_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

std::uint64_t total_items(SednaCluster& cluster) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    n += cluster.node(i).local_store().size();
  }
  return n;
}

TEST(Purge, JoinHandoffReclaimsOldCopies) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "p-" + std::to_string(i),
                                     "v").ok());
  }
  cluster.run_for(sim_ms(100));
  const std::uint64_t before = total_items(cluster);
  EXPECT_EQ(before, 900u);  // 300 keys x 3 replicas

  auto joined = cluster.join_new_node();
  ASSERT_TRUE(joined.ok());
  cluster.run_for(sim_sec(2));  // transfers + purges settle

  // Replication factor is still 3: the joiner's new copies are offset by
  // purges at the previous owners (within a small transient slack).
  const std::uint64_t after = total_items(cluster);
  EXPECT_LE(after, before + before / 5);

  // And nothing was lost.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(cluster.read_latest(client, "p-" + std::to_string(i)).ok());
  }
}

TEST(Purge, ReplicaSetMembersNeverPurgeTheirCopies) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "keepme", "v").ok());
  cluster.run_for(sim_ms(20));

  // Hand-deliver a bogus purge naming the current owner: every member of
  // the replica set must decline.
  const VnodeId vnode =
      cluster.node(0).metadata().table().vnode_for_key("keepme");
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_vnode(vnode);
  PurgeVnodeRequest purge{vnode, replicas[0]};
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    cluster.node(i).send_oneway(cluster.node(i).id(), kMsgPurgeVnode,
                                purge.encode());
  }
  cluster.run_for(sim_ms(100));

  std::size_t copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).local_store().read_latest("keepme").ok()) ++copies;
  }
  EXPECT_EQ(copies, 3u);
}

TEST(Rebalance, DaemonFlattensSkewedCluster) {
  SednaClusterConfig cfg = base_config();
  // Skew: node 100 owns half the ring; 101/102 split most of the rest;
  // 103-105 own almost nothing.
  cfg.initial_owners = {100, 100, 100, 101, 101, 102, 102, 103};
  cfg.node_template.rebalance_interval = sim_sec(2);
  cfg.node_template.rebalance_tolerance = 2;
  cfg.node_template.rebalance_max_moves = 16;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());

  auto& client = cluster.make_client();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "rb-" + std::to_string(i),
                                     "v").ok());
  }

  const auto initial_counts = cluster.node(0).metadata().table().counts();
  std::uint32_t initial_max = 0, initial_min = UINT32_MAX;
  for (const auto& [node, count] : initial_counts) {
    initial_max = std::max(initial_max, count);
    initial_min = std::min(initial_min, count);
  }
  ASSERT_GT(initial_max, initial_min + 10);  // genuinely skewed

  // Let the daemon run several rounds.
  cluster.run_for(sim_sec(40));

  const auto counts = cluster.node(0).metadata().table().counts();
  std::uint32_t final_max = 0, final_min = UINT32_MAX;
  for (const auto& [node, count] : counts) {
    final_max = std::max(final_max, count);
    final_min = std::min(final_min, count);
  }
  EXPECT_LE(final_max - final_min,
            cfg.node_template.rebalance_tolerance + 2);

  // All data survived the reshuffling.
  for (int i = 0; i < 200; ++i) {
    auto got = cluster.read_latest(client, "rb-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->value, "v");
  }

  // Exactly one daemon acted (the lowest-id node).
  std::uint64_t rounds = 0;
  for (std::size_t i = 1; i < cluster.data_node_count(); ++i) {
    rounds +=
        cluster.node(i).metrics().counter("rebalance.rounds").value();
  }
  EXPECT_EQ(rounds, 0u);
  EXPECT_GT(cluster.node(0).metrics().counter("rebalance.rounds").value(),
            0u);
}

TEST(Rebalance, NoOpOnBalancedCluster) {
  SednaClusterConfig cfg = base_config();
  cfg.node_template.rebalance_interval = sim_sec(2);
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  cluster.run_for(sim_sec(10));
  EXPECT_EQ(cluster.node(0).metrics().counter("rebalance.moves").value(),
            0u);
}

TEST(BatchApi, WriteBatchAllSucceedAndAreReadable) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; ++i) {
    entries.emplace_back("batch-" + std::to_string(i),
                         "v" + std::to_string(i));
  }
  std::optional<std::vector<Status>> results;
  client.write_latest_batch(entries,
                            [&](const std::vector<Status>& r) { results = r; });
  cluster.run_until([&] { return results.has_value(); });
  ASSERT_TRUE(results.has_value());
  ASSERT_EQ(results->size(), 100u);
  for (const auto& st : *results) EXPECT_TRUE(st.ok());

  std::vector<std::string> keys;
  for (const auto& [k, v] : entries) keys.push_back(k);
  std::optional<std::vector<Result<store::VersionedValue>>> reads;
  client.read_latest_batch(
      keys, [&](const std::vector<Result<store::VersionedValue>>& r) {
        reads = r;
      });
  cluster.run_until([&] { return reads.has_value(); });
  ASSERT_TRUE(reads.has_value());
  for (std::size_t i = 0; i < reads->size(); ++i) {
    ASSERT_TRUE((*reads)[i].ok()) << i;
    EXPECT_EQ((*reads)[i]->value, "v" + std::to_string(i));
  }
}

TEST(BatchApi, BatchIsFasterThanClosedLoop) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();

  // Closed loop: 50 writes, one at a time.
  const SimTime loop_start = cluster.sim().now();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "loop-" + std::to_string(i),
                                     "v").ok());
  }
  const SimDuration loop_cost = cluster.sim().now() - loop_start;

  // Batch: 50 writes pipelined.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 50; ++i) {
    entries.emplace_back("pipe-" + std::to_string(i), "v");
  }
  std::optional<std::vector<Status>> results;
  const SimTime batch_start = cluster.sim().now();
  client.write_latest_batch(entries,
                            [&](const std::vector<Status>& r) { results = r; });
  cluster.run_until([&] { return results.has_value(); });
  const SimDuration batch_cost = cluster.sim().now() - batch_start;

  EXPECT_LT(batch_cost * 3, loop_cost);  // at least 3x faster pipelined
}

TEST(BatchApi, EmptyBatchCompletesImmediately) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  bool write_done = false, read_done = false;
  client.write_latest_batch({}, [&](const std::vector<Status>& r) {
    EXPECT_TRUE(r.empty());
    write_done = true;
  });
  client.read_latest_batch({}, [&](const auto& r) {
    EXPECT_TRUE(r.empty());
    read_done = true;
  });
  EXPECT_TRUE(write_done);
  EXPECT_TRUE(read_done);
}

TEST(BatchApi, MixedOutcomesReportedPerKey) {
  SednaCluster cluster(base_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "exists", "v").ok());

  std::optional<std::vector<Result<store::VersionedValue>>> reads;
  client.read_latest_batch(
      {"exists", "missing-1", "missing-2"},
      [&](const std::vector<Result<store::VersionedValue>>& r) {
        reads = r;
      });
  cluster.run_until([&] { return reads.has_value(); });
  ASSERT_TRUE(reads.has_value());
  EXPECT_TRUE((*reads)[0].ok());
  EXPECT_FALSE((*reads)[1].ok());
  EXPECT_FALSE((*reads)[2].ok());
}

}  // namespace
}  // namespace sedna::cluster
