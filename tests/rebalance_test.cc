// Traffic-aware rebalancer tests: planner policy (hot→coldest-healthy,
// health gating, per-round caps, cooldown hysteresis, strict-improvement
// guard, isolate path), a Zipf-load convergence property, the end-to-end
// multi-phase migration protocol, and a fault-injection suite (source
// crash mid-snapshot, destination crash mid-migration, ZooKeeper
// partition during cutover, writes racing the migration).
//
// The safety invariant every fault test asserts: an acked write stays
// readable at quorum after recovery, ownership never forks (no vnode
// with two believed owners once views settle), and an aborted migration
// never deletes data it is not provably allowed to delete.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/monitor.h"
#include "cluster/rebalancer.h"
#include "cluster/sedna_cluster.h"
#include "ring/imbalance.h"
#include "ring/vnode_table.h"

namespace sedna::cluster {
namespace {

// ---- planner fixtures ---------------------------------------------------

ring::VnodeTable make_ring(std::uint32_t vnodes,
                           const std::vector<NodeId>& nodes) {
  ring::VnodeTable table(vnodes, 3);
  for (std::uint32_t v = 0; v < vnodes; ++v) {
    table.assign(v, nodes[v % nodes.size()]);
  }
  return table;
}

/// Builds the cluster-wide imbalance table a leader would assemble, given
/// per-vnode read traffic attributed to each vnode's current ring owner.
ring::ImbalanceTable table_from(
    const ring::VnodeTable& ring,
    const std::map<VnodeId, std::uint64_t>& traffic) {
  std::map<NodeId, ring::RealNodeLoad> rows;
  for (NodeId n : ring.nodes()) rows[n].node = n;
  for (const auto& [v, t] : traffic) {
    auto& row = rows[ring.owner(v)];
    row.reads += t;
    row.vnodes.push_back(ring::VnodeLoadRow{v, 0, t, 0, 0});
  }
  ring::ImbalanceTable out;
  for (const auto& [n, row] : rows) out.update(row);
  return out;
}

TrafficRebalancer::HealthFn all_healthy() {
  return [](NodeId) { return HealthState::kHealthy; };
}

// ---- planner policy -----------------------------------------------------

TEST(RebalancePlanner, MovesHottestVnodeToColdestHealthyNode) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4};
  const auto ring = make_ring(8, nodes);  // v0,v4→1; v1,v5→2; ...
  const std::map<VnodeId, std::uint64_t> traffic = {
      {0, 600}, {4, 400}, {1, 100}, {2, 100}, {3, 100}};
  TrafficRebalancer reb;

  const auto moves =
      reb.plan(table_from(ring, traffic), ring, nodes, all_healthy(), 0);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].vnode, 0u);   // the hottest slice
  EXPECT_EQ(moves[0].from, 1u);    // off the hottest node
  EXPECT_EQ(moves[0].to, 2u);      // to the coldest (lowest-id tie-break)
  EXPECT_EQ(moves[0].reason, MigrationReason::kOffload);
  EXPECT_GT(reb.last_cv(), reb.config().cv_trigger);
}

TEST(RebalancePlanner, NeverTargetsUnhealthyNodes) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4};
  const auto ring = make_ring(8, nodes);
  const std::map<VnodeId, std::uint64_t> traffic = {
      {0, 600}, {4, 400}, {1, 100}, {2, 100}, {3, 100}};
  TrafficRebalancer reb;

  // Node 2 would win on coldness, but it is degraded; node 3 is suspect.
  const auto health = [](NodeId n) {
    if (n == 2) return HealthState::kDegraded;
    if (n == 3) return HealthState::kSuspect;
    return HealthState::kHealthy;
  };
  const auto moves =
      reb.plan(table_from(ring, traffic), ring, nodes, health, 0);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].to, 4u);  // the only healthy candidate

  // With every other node unhealthy there is nowhere safe to migrate:
  // the planner must do nothing rather than dump load on a sick node.
  TrafficRebalancer reb2;
  const auto none = reb2.plan(table_from(ring, traffic), ring, nodes,
                              [](NodeId n) {
                                return n == 1 ? HealthState::kHealthy
                                              : HealthState::kDead;
                              },
                              0);
  EXPECT_TRUE(none.empty());
}

TEST(RebalancePlanner, RespectsPerRoundMoveCap) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4};
  const auto ring = make_ring(12, nodes);  // node 1 owns v0, v4, v8
  const std::map<VnodeId, std::uint64_t> traffic = {
      {0, 300}, {4, 300}, {8, 300}, {1, 50}, {2, 50}, {3, 50}};

  TrafficRebalancerConfig one;
  one.max_moves_per_round = 1;
  TrafficRebalancer capped(one);
  EXPECT_EQ(capped
                .plan(table_from(ring, traffic), ring, nodes, all_healthy(),
                      0)
                .size(),
            1u);

  TrafficRebalancer def;  // default cap is 2
  EXPECT_EQ(
      def.plan(table_from(ring, traffic), ring, nodes, all_healthy(), 0)
          .size(),
      2u);
}

TEST(RebalancePlanner, CooldownPinsARecentlyMovedVnode) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4};
  const auto ring = make_ring(8, nodes);
  // Node 2 is hot through v1 and v5 in equal parts (neither dominates,
  // so the isolate streak stays out of the picture); everyone else idles.
  const std::map<VnodeId, std::uint64_t> traffic = {
      {0, 100}, {1, 300}, {5, 300}, {2, 100}, {3, 100}};
  TrafficRebalancer reb;

  const auto first =
      reb.plan(table_from(ring, traffic), ring, nodes, all_healthy(), 0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].vnode, 1u);  // hottest slice moves first

  // Same (stale) telemetry one second later: v1 is pinned by its
  // cooldown, so the planner falls through to the next slice instead of
  // bouncing the same vnode again.
  const auto second = reb.plan(table_from(ring, traffic), ring, nodes,
                               all_healthy(), sim_sec(1));
  for (const MigrationPlan& m : second) EXPECT_NE(m.vnode, 1u);

  // After the cooldown expires the slice is movable again.
  const auto third = reb.plan(table_from(ring, traffic), ring, nodes,
                              all_healthy(), sim_sec(31));
  ASSERT_FALSE(third.empty());
  EXPECT_EQ(third[0].vnode, 1u);
}

TEST(RebalancePlanner, BalancedClusterIsANoOp) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4};
  const auto ring = make_ring(8, nodes);
  const std::map<VnodeId, std::uint64_t> traffic = {
      {0, 100}, {1, 100}, {2, 100}, {3, 100}};
  TrafficRebalancer reb;
  EXPECT_TRUE(
      reb.plan(table_from(ring, traffic), ring, nodes, all_healthy(), 0)
          .empty());
  EXPECT_LT(reb.last_cv(), reb.config().cv_trigger);

  // Zero traffic everywhere is equally a no-op (no NaN CV, no moves).
  TrafficRebalancer reb2;
  EXPECT_TRUE(
      reb2.plan(table_from(ring, {}), ring, nodes, all_healthy(), 0)
          .empty());
  EXPECT_EQ(reb2.last_cv(), 0.0);
}

TEST(RebalancePlanner, StrictImprovementGuardRefusesPureRelocation) {
  // One slice carries all the traffic: moving it would only relocate the
  // hot spot (and seed a ping-pong), so the planner must hold still even
  // though the CV is maximal.
  const std::vector<NodeId> nodes = {1, 2};
  const auto ring = make_ring(4, nodes);
  const std::map<VnodeId, std::uint64_t> traffic = {{0, 1000}};
  TrafficRebalancer reb;
  EXPECT_TRUE(
      reb.plan(table_from(ring, traffic), ring, nodes, all_healthy(), 0)
          .empty());
  EXPECT_GT(reb.last_cv(), reb.config().cv_trigger);
}

TEST(RebalancePlanner, PersistentlyDominantVnodeFlipsToIsolatePath) {
  const std::vector<NodeId> nodes = {1, 2, 3, 4};
  const auto ring = make_ring(12, nodes);  // node 1 owns v0, v4, v8
  // v0 dominates node 1 (900 of 1000): no single move of v0 can help
  // (the guard refuses it), so after split_streak rounds the planner
  // sheds the *other* slices to dedicate node 1 to the star.
  const std::map<VnodeId, std::uint64_t> traffic = {
      {0, 900}, {4, 50}, {8, 50}, {1, 100}, {2, 100}, {3, 100}};
  TrafficRebalancerConfig cfg;
  cfg.vnode_cooldown = 0;  // isolate the streak logic from cooldowns
  TrafficRebalancer reb(cfg);

  for (std::uint32_t round = 1; round <= cfg.split_streak; ++round) {
    const auto moves = reb.plan(table_from(ring, traffic), ring, nodes,
                                all_healthy(), round * sim_sec(1));
    ASSERT_FALSE(moves.empty()) << "round " << round;
    const bool isolating = round >= cfg.split_streak;
    for (const MigrationPlan& m : moves) {
      EXPECT_NE(m.vnode, 0u) << "the star slice must never move";
      EXPECT_EQ(m.reason, isolating ? MigrationReason::kIsolate
                                    : MigrationReason::kOffload)
          << "round " << round;
    }
  }
}

// ---- convergence property ----------------------------------------------

TEST(RebalanceConvergence, ZipfLoadCvStrictlyDecreasesToAFixedPoint) {
  constexpr std::uint32_t kVnodes = 64;
  const std::vector<NodeId> nodes = {1, 2, 3, 4, 5, 6, 7, 8};
  ring::VnodeTable ring = make_ring(kVnodes, nodes);
  // Zipf-ish per-vnode traffic (exponent 1): a heavy head over a long
  // tail, the paper's hot-data scenario.
  std::map<VnodeId, std::uint64_t> traffic;
  for (std::uint32_t v = 0; v < kVnodes; ++v) {
    traffic[v] = 100000 / (v + 1);
  }

  TrafficRebalancerConfig cfg;
  cfg.vnode_cooldown = 0;
  cfg.max_moves_per_round = 4;
  TrafficRebalancer reb(cfg);

  constexpr int kMaxRounds = 64;
  std::vector<double> cv_history;
  int fixed_point_round = -1;
  for (int round = 0; round < kMaxRounds; ++round) {
    const auto moves =
        reb.plan(table_from(ring, traffic), ring, nodes, all_healthy(),
                 static_cast<SimTime>(round) * sim_sec(1));
    cv_history.push_back(reb.last_cv());
    if (round > 0) {
      // Every round that planned moves must have strictly reduced the CV
      // observed by the next round (same total, smaller variance).
      EXPECT_LE(cv_history[round], cv_history[round - 1])
          << "CV regressed at round " << round;
    }
    if (moves.empty()) {
      fixed_point_round = round;
      break;
    }
    EXPECT_LT(cv_history.back(), cv_history.front() + 1e-9);
    for (const MigrationPlan& m : moves) {
      ASSERT_EQ(ring.owner(m.vnode), m.from);
      ring.assign(m.vnode, m.to);
    }
  }
  ASSERT_GE(fixed_point_round, 1) << "never reached a fixed point";
  EXPECT_LT(cv_history.back(), cv_history.front());

  // The fixed point is stable: re-planning from it never oscillates.
  for (int extra = 0; extra < 3; ++extra) {
    const auto again = reb.plan(
        table_from(ring, traffic), ring, nodes, all_healthy(),
        static_cast<SimTime>(fixed_point_round + 1 + extra) * sim_sec(1));
    EXPECT_TRUE(again.empty()) << "ping-pong after the fixed point";
    EXPECT_DOUBLE_EQ(reb.last_cv(), cv_history.back());
  }
}

// ---- end-to-end migration protocol --------------------------------------

SednaClusterConfig migration_config(std::uint64_t seed = 2012) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 32;
  cfg.seed = seed;
  cfg.node_template.anti_entropy_interval = sim_ms(500);
  cfg.node_template.anti_entropy_vnodes_per_round = 4;
  return cfg;
}

std::size_t node_index(SednaCluster& cluster, NodeId id) {
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == id) return i;
  }
  ADD_FAILURE() << "no data node with id " << id;
  return SIZE_MAX;
}

struct MigrationPick {
  VnodeId vnode = kInvalidVnode;
  NodeId from = kInvalidNode;
  std::size_t from_idx = SIZE_MAX;
  NodeId dst = kInvalidNode;
  std::size_t dst_idx = SIZE_MAX;
};

/// A (vnode, destination) pair where the destination is outside the
/// vnode's current replica set — a genuine data migration, not a copy
/// promotion.
MigrationPick pick_migration(SednaCluster& cluster) {
  const ring::VnodeTable table = cluster.node(0).metadata().table();
  for (VnodeId v = 0; v < table.total_vnodes(); ++v) {
    const auto reps = table.replicas_for_vnode(v);
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      const NodeId cand = cluster.node(i).id();
      if (std::find(reps.begin(), reps.end(), cand) != reps.end()) continue;
      MigrationPick p;
      p.vnode = v;
      p.from = table.owner(v);
      p.from_idx = node_index(cluster, p.from);
      p.dst = cand;
      p.dst_idx = i;
      return p;
    }
  }
  ADD_FAILURE() << "no migratable (vnode, destination) pair";
  return {};
}

/// Writes `count` keys that hash into `vnode`; returns key → acked value.
std::map<std::string, std::string> write_vnode_keys(
    SednaCluster& cluster, SednaClient& client,
    const ring::VnodeTable& table, VnodeId vnode, std::size_t count,
    const std::string& tag) {
  std::map<std::string, std::string> acked;
  for (int i = 0; acked.size() < count && i < 200000; ++i) {
    const std::string key = tag + "-" + std::to_string(i);
    if (table.vnode_for_key(key) != vnode) continue;
    const std::string value = "val-" + std::to_string(i);
    if (cluster.write_latest(client, key, value).ok()) acked[key] = value;
  }
  EXPECT_EQ(acked.size(), count);
  return acked;
}

void expect_all_readable(SednaCluster& cluster, SednaClient& client,
                         const std::map<std::string, std::string>& acked,
                         const char* when) {
  for (const auto& [key, value] : acked) {
    auto got = cluster.read_latest(client, key);
    ASSERT_TRUE(got.ok()) << when << ": lost acked key " << key;
    EXPECT_EQ(got->value, value) << when << ": wrong value for " << key;
  }
}

/// Once views settle, every live node must agree on the vnode's owner —
/// the "no double owner" half of the migration safety invariant.
void expect_single_owner(SednaCluster& cluster, VnodeId vnode,
                         NodeId owner) {
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (!cluster.node(i).alive()) continue;
    EXPECT_EQ(cluster.node(i).metadata().table().owner(vnode), owner)
        << "node " << cluster.node(i).id() << " disagrees on the owner";
  }
}

TEST(Migration, EndToEndMoveCommitsAndKeepsEveryAckedWriteReadable) {
  SednaCluster cluster(migration_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const MigrationPick pick = pick_migration(cluster);
  const auto acked = write_vnode_keys(
      cluster, client, cluster.node(0).metadata().table(), pick.vnode, 20,
      "mig");

  std::optional<MigrateVnodeReply> out;
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, pick.from,
                       [&](const MigrateVnodeReply& rep) { out = rep; });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  EXPECT_EQ(out->status, StatusCode::kOk);
  EXPECT_GT(out->bytes, 0u);
  EXPECT_EQ(cluster.node(pick.dst_idx).migrations_active(), 0u);

  // The destination committed the cutover; the journal propagates it to
  // everyone else within a couple of lease periods.
  EXPECT_EQ(cluster.node(pick.dst_idx).metadata().table().owner(pick.vnode),
            pick.dst);
  cluster.run_for(sim_sec(3));
  expect_single_owner(cluster, pick.vnode, pick.dst);
  expect_all_readable(cluster, client, acked, "after migration");

  auto& dst_metrics = cluster.node(pick.dst_idx).metrics();
  EXPECT_EQ(dst_metrics.counter("rebalance.migrations_completed").value(),
            1u);
  EXPECT_GE(dst_metrics.counter("rebalance.bytes_moved").value(),
            out->bytes);
  EXPECT_EQ(dst_metrics.histogram("rebalance.cutover_latency_us").count(),
            1u);
}

TEST(Migration, StalePlanIsRefusedAndThePulledCopyDropped) {
  SednaCluster cluster(migration_config(31));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const MigrationPick pick = pick_migration(cluster);
  const auto acked = write_vnode_keys(
      cluster, client, cluster.node(0).metadata().table(), pick.vnode, 10,
      "stale");

  // Name a replica that holds the data but is NOT the registered owner:
  // the snapshot succeeds, the cutover pre-check must refuse.
  const auto reps =
      cluster.node(0).metadata().table().replicas_for_vnode(pick.vnode);
  ASSERT_GE(reps.size(), 2u);
  const NodeId wrong_from = reps[1];

  std::optional<MigrateVnodeReply> out;
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, wrong_from,
                       [&](const MigrateVnodeReply& rep) { out = rep; });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  EXPECT_EQ(out->status, StatusCode::kRefused);

  // Ownership untouched, and the destination dropped the copy it pulled
  // under the stale plan (it is not in the replica set).
  expect_single_owner(cluster, pick.vnode, pick.from);
  for (const auto& [key, value] : acked) {
    EXPECT_FALSE(cluster.node(pick.dst_idx)
                     .local_store()
                     .read_latest(key)
                     .ok())
        << "stale-plan copy of " << key << " was kept";
  }
  expect_all_readable(cluster, client, acked, "after refused migration");
}

// ---- fault injection ----------------------------------------------------

TEST(MigrationFaults, SourceCrashMidSnapshotAbortsWithoutOwnershipChange) {
  SednaCluster cluster(migration_config(41));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const MigrationPick pick = pick_migration(cluster);
  const auto acked = write_vnode_keys(
      cluster, client, cluster.node(0).metadata().table(), pick.vnode, 20,
      "srccrash");

  cluster.crash_node(pick.from_idx);
  std::optional<MigrateVnodeReply> out;
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, pick.from,
                       [&](const MigrateVnodeReply& rep) { out = rep; });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  EXPECT_EQ(out->status, StatusCode::kUnavailable);
  EXPECT_EQ(cluster.node(pick.dst_idx).migrations_active(), 0u);
  EXPECT_EQ(cluster.node(pick.dst_idx)
                .metrics()
                .counter("rebalance.migrations_aborted")
                .value(),
            1u);

  // The vnode still belongs to the (dead) source: an aborted migration
  // must not have clobbered the registered owner.
  EXPECT_EQ(cluster.node(pick.dst_idx).metadata().table().owner(pick.vnode),
            pick.from);

  // After the source returns, every acked write is readable at quorum
  // (its RAM store died; the surviving replicas repair it).
  cluster.run_for(sim_sec(3));
  cluster.restart_node(pick.from_idx);
  ASSERT_TRUE(cluster.node(pick.from_idx).ready());
  cluster.run_for(sim_sec(2));
  expect_all_readable(cluster, client, acked, "after source recovery");
}

TEST(MigrationFaults, DestinationCrashMidMigrationLeavesSourceAsOwner) {
  SednaCluster cluster(migration_config(42));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const MigrationPick pick = pick_migration(cluster);
  const auto acked = write_vnode_keys(
      cluster, client, cluster.node(0).metadata().table(), pick.vnode, 20,
      "dstcrash");

  bool done = false;
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, pick.from,
                       [&](const MigrateVnodeReply&) { done = true; });
  // The destination is mid-protocol the instant the source has served the
  // snapshot: kill it there, before any cutover can happen.
  ASSERT_TRUE(cluster.run_until([&] {
    return cluster.node(pick.from_idx)
               .metrics()
               .counter("transfer.vnodes_served")
               .value() >= 1;
  }));
  ASSERT_FALSE(done);
  EXPECT_EQ(cluster.node(pick.dst_idx).migrations_active(), 1u);
  cluster.crash_node(pick.dst_idx);
  EXPECT_EQ(cluster.node(pick.dst_idx).migrations_active(), 0u);

  cluster.run_for(sim_sec(1));
  // The crash happened before the CAS: the source remains the owner on
  // every surviving view, and the acked data never left the replica set.
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (!cluster.node(i).alive()) continue;
    EXPECT_EQ(cluster.node(i).metadata().table().owner(pick.vnode),
              pick.from);
  }
  expect_all_readable(cluster, client, acked, "destination down");

  cluster.run_for(sim_sec(3));
  cluster.restart_node(pick.dst_idx);
  cluster.run_for(sim_sec(1));
  expect_single_owner(cluster, pick.vnode, pick.from);
  expect_all_readable(cluster, client, acked, "after destination recovery");
}

TEST(MigrationFaults, ZkPartitionAtCutoverKeepsDataAndRetryCommits) {
  SednaCluster cluster(migration_config(43));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const MigrationPick pick = pick_migration(cluster);
  const auto acked = write_vnode_keys(
      cluster, client, cluster.node(0).metadata().table(), pick.vnode, 15,
      "zkpart");

  // Cut the destination off from the whole ensemble: the node-to-node
  // snapshot and catch-up phases succeed, the cutover CAS cannot.
  for (NodeId z : cluster.zk_ids()) {
    cluster.network().partition(pick.dst, z);
  }
  std::optional<MigrateVnodeReply> out;
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, pick.from,
                       [&](const MigrateVnodeReply& rep) { out = rep; });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  EXPECT_EQ(out->status, StatusCode::kUnavailable);

  // The CAS outcome was UNKNOWN from the destination's point of view, so
  // it must keep the pulled copy: purging on ambiguity could orphan acked
  // writes if the CAS had in fact committed.
  std::size_t held = 0;
  for (const auto& [key, value] : acked) {
    auto got = cluster.node(pick.dst_idx).local_store().read_latest(key);
    if (got.ok() && got->value == value) ++held;
  }
  EXPECT_EQ(held, acked.size()) << "aborted cutover dropped pulled data";
  EXPECT_EQ(cluster.node(pick.from_idx).metadata().table().owner(pick.vnode),
            pick.from);

  // Heal and retry: the second attempt commits (catch-up is a cheap
  // digest match now) and the cluster converges on the new owner.
  cluster.network().heal_all();
  cluster.run_for(sim_sec(1));
  out.reset();
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, pick.from,
                       [&](const MigrateVnodeReply& rep) { out = rep; });
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  EXPECT_EQ(out->status, StatusCode::kOk);
  cluster.run_for(sim_sec(3));
  expect_single_owner(cluster, pick.vnode, pick.dst);
  expect_all_readable(cluster, client, acked, "after healed retry");
}

TEST(MigrationFaults, WritesRacingTheMigrationAllSurvive) {
  SednaCluster cluster(migration_config(44));
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const MigrationPick pick = pick_migration(cluster);
  const ring::VnodeTable table = cluster.node(0).metadata().table();

  // Pre-collect 40 keys of the migrating vnode; write the first 10 up
  // front, the rest (plus overwrites of the first ones) while the
  // migration is in flight.
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 40 && i < 400000; ++i) {
    const std::string key = "race-" + std::to_string(i);
    if (table.vnode_for_key(key) == pick.vnode) keys.push_back(key);
  }
  ASSERT_EQ(keys.size(), 40u);

  std::map<std::string, std::string> acked;
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, keys[i], "before").ok());
    acked[keys[i]] = "before";
  }

  std::optional<MigrateVnodeReply> out;
  cluster.node(pick.dst_idx)
      .begin_migration(pick.vnode, pick.from,
                       [&](const MigrateVnodeReply& rep) { out = rep; });
  // Each synchronous write steps the event loop, interleaving client
  // traffic with the migration's snapshot / catch-up / cutover phases.
  for (std::size_t i = 10; i < keys.size(); ++i) {
    if (cluster.write_latest(client, keys[i], "during").ok()) {
      acked[keys[i]] = "during";
    }
  }
  for (std::size_t i = 0; i < 10; ++i) {
    if (cluster.write_latest(client, keys[i], "rewrite").ok()) {
      acked[keys[i]] = "rewrite";
    }
  }
  ASSERT_TRUE(cluster.run_until([&] { return out.has_value(); }));
  EXPECT_EQ(out->status, StatusCode::kOk);

  // Views settle (journal sync + a few anti-entropy rounds), then the
  // invariant: every acked write is readable with its last acked value.
  cluster.run_for(sim_sec(6));
  expect_single_owner(cluster, pick.vnode, pick.dst);
  ASSERT_GE(acked.size(), 40u);
  expect_all_readable(cluster, client, acked, "after racing writes");
}

// ---- leader-driven convergence ------------------------------------------

double owner_count_cv(const ring::VnodeTable& table,
                      const std::vector<NodeId>& nodes) {
  const auto counts = table.counts();
  double mean = 0.0;
  for (NodeId n : nodes) {
    const auto it = counts.find(n);
    mean += it == counts.end() ? 0.0 : static_cast<double>(it->second);
  }
  mean /= static_cast<double>(nodes.size());
  double var = 0.0;
  for (NodeId n : nodes) {
    const auto it = counts.find(n);
    const double c = it == counts.end() ? 0.0 : it->second;
    var += (c - mean) * (c - mean);
  }
  var /= static_cast<double>(nodes.size());
  return mean == 0.0 ? 0.0 : std::sqrt(var) / mean;
}

SednaClusterConfig leader_config(std::uint64_t seed) {
  SednaClusterConfig cfg = migration_config(seed);
  // Skewed boot: nodes 100/101 own every vnode; 102/103 start idle.
  cfg.initial_owners = {100, 101};
  cfg.node_template.load_report_interval = sim_ms(500);
  cfg.node_template.traffic_rebalance_interval = sim_sec(2);
  cfg.node_template.traffic_rebalance.cv_trigger = 0.2;
  cfg.node_template.traffic_rebalance.vnode_cooldown = sim_sec(5);
  return cfg;
}

TEST(RebalancerE2E, LeaderSpreadsASkewedClusterUnderLoad) {
  SednaCluster cluster(leader_config(77));
  ASSERT_TRUE(cluster.boot().ok());
  cluster.enable_monitor();
  auto& client = cluster.make_client();
  const std::vector<NodeId> ids = cluster.data_ids();

  const double cv_before =
      owner_count_cv(cluster.node(0).metadata().table(), ids);
  EXPECT_GT(cv_before, 0.9);  // two nodes own everything

  // Sustained uniform traffic: per-node load mirrors the ownership skew,
  // so the telemetry loop has something real to fix.
  std::map<std::string, std::string> acked;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 120; ++i) {
      const std::string key = "lk-" + std::to_string(i);
      const std::string value = "r" + std::to_string(round);
      if (cluster.write_latest(client, key, value).ok()) acked[key] = value;
      if (i % 3 == 0) (void)cluster.read_latest(client, key);
    }
    cluster.run_for(sim_ms(500));
  }
  cluster.run_for(sim_sec(3));

  std::uint64_t completed = 0, rounds = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    completed += cluster.node(i)
                     .metrics()
                     .counter("rebalance.migrations_completed")
                     .value();
    rounds += cluster.node(i)
                  .metrics()
                  .counter("rebalance.traffic_rounds")
                  .value();
  }
  EXPECT_GE(rounds, 1u);
  EXPECT_GE(completed, 1u);

  // Ownership spread out: the idle nodes picked up slices and the
  // count CV strictly improved.
  const ring::VnodeTable after = cluster.node(0).metadata().table();
  const double cv_after = owner_count_cv(after, ids);
  EXPECT_LT(cv_after, cv_before);
  const auto counts = after.counts();
  EXPECT_GE(counts.count(102) + counts.count(103), 1u);

  // Safety survived the shuffling: every acked write still reads back.
  expect_all_readable(cluster, client, acked, "after leader rebalancing");

  // The monitor saw the migrations and nothing got stuck.
  auto* mon = cluster.monitor();
  ASSERT_NE(mon, nullptr);
  const auto& names = mon->recorder().series_names();
  const auto it = std::find(names.begin(), names.end(), "migrations_done");
  ASSERT_NE(it, names.end());
  const std::size_t idx =
      static_cast<std::size_t>(it - names.begin());
  ASSERT_GT(mon->recorder().size(), 0u);
  EXPECT_GE(mon->recorder().value_at(mon->recorder().size() - 1, idx),
            static_cast<double>(completed));
  EXPECT_NE(mon->alerts().state("stuck-migration"), AlertState::kFiring);
}

// ---- determinism --------------------------------------------------------

std::string run_rebalance_scenario(std::uint64_t seed) {
  SednaCluster cluster(leader_config(seed));
  EXPECT_TRUE(cluster.boot().ok());
  cluster.enable_monitor();
  auto& client = cluster.make_client();
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 80; ++i) {
      (void)cluster.write_latest(client, "det-" + std::to_string(i),
                                 "r" + std::to_string(round));
    }
    cluster.run_for(sim_ms(500));
  }
  cluster.run_for(sim_sec(2));

  std::string out;
  out += "time=" + std::to_string(cluster.sim().now());
  out += " msgs=" + std::to_string(cluster.network().messages_sent());
  out += " bytes=" + std::to_string(cluster.network().bytes_sent());
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto& node = cluster.node(i);
    out += "\nnode=" + std::to_string(node.id());
    out += " started=" +
           std::to_string(
               node.metrics().counter("rebalance.migrations_started").value());
    out += " completed=" +
           std::to_string(node.metrics()
                              .counter("rebalance.migrations_completed")
                              .value());
    out += " aborted=" +
           std::to_string(
               node.metrics().counter("rebalance.migrations_aborted").value());
    out += " bytes_moved=" +
           std::to_string(
               node.metrics().counter("rebalance.bytes_moved").value());
    out += " store=" + std::to_string(node.local_store().size());
  }
  const ring::VnodeTable table = cluster.node(0).metadata().table();
  out += "\nowners=";
  for (VnodeId v = 0; v < table.total_vnodes(); ++v) {
    out += std::to_string(table.owner(v)) + ",";
  }
  out += "\n" + cluster.monitor()->timeseries_csv();
  return out;
}

TEST(RebalancerDeterminism, MigrationScenarioIsByteIdenticalAcrossRuns) {
  const std::string a = run_rebalance_scenario(99);
  const std::string b = run_rebalance_scenario(99);
  EXPECT_EQ(a, b);
  // The scenario is non-trivial: the trace includes actual migrations.
  EXPECT_NE(a.find("completed="), std::string::npos);
  EXPECT_NE(a.find("migrations_inflight"), std::string::npos);
}

}  // namespace
}  // namespace sedna::cluster
