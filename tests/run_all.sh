#!/usr/bin/env bash
# One-shot gate: builds the regular tree, runs the whole ctest suite, runs
# the failure drill twice and diffs its monitor output (determinism gate:
# the dashboard, time-series CSV, latency-attribution CSV and Prometheus
# dump must be byte-identical), lints the Prometheus dump with promlint,
# then repeats the test run under AddressSanitizer + UBSan via
# run_sanitized.sh.
# Usage: tests/run_all.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)"

(cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)" "$@")

# Determinism gate: two identically-seeded drill runs must agree byte for
# byte, both on stdout (includes the monitor dashboard + alert timeline)
# and in the exported time-series CSV.
drill_tmp="$(mktemp -d)"
trap 'rm -rf "${drill_tmp}"' EXIT
for run in 1 2; do
  mkdir -p "${drill_tmp}/${run}"
  (cd "${drill_tmp}/${run}" &&
   SEDNA_OUT_DIR="${drill_tmp}/${run}" \
   "${build_dir}/examples/failure_drill" > stdout.txt)
done
diff "${drill_tmp}/1/stdout.txt" "${drill_tmp}/2/stdout.txt" \
  || { echo "failure_drill stdout is not deterministic"; exit 1; }
diff "${drill_tmp}/1/failure_drill_timeseries.csv" \
     "${drill_tmp}/2/failure_drill_timeseries.csv" \
  || { echo "failure_drill time series is not deterministic"; exit 1; }
diff "${drill_tmp}/1/failure_drill_attribution.csv" \
     "${drill_tmp}/2/failure_drill_attribution.csv" \
  || { echo "failure_drill attribution CSV is not deterministic"; exit 1; }
diff "${drill_tmp}/1/failure_drill_metrics.prom" \
     "${drill_tmp}/2/failure_drill_metrics.prom" \
  || { echo "failure_drill metrics dump is not deterministic"; exit 1; }
echo "failure_drill determinism gate: OK"

# Exposition-format gate: the Prometheus dump (TYPE declarations, label
# syntax, exemplar comments) must pass the in-tree linter.
"${build_dir}/tests/promlint" "${drill_tmp}/1/failure_drill_metrics.prom"

# Same gate for the rebalancer ablation: two runs of the 64-node
# migration scenario must agree byte for byte (the run itself already
# exits non-zero unless the rebalancer strictly improves the load CV).
for run in 1 2; do
  mkdir -p "${drill_tmp}/reb${run}"
  (cd "${drill_tmp}/reb${run}" &&
   SEDNA_OUT_DIR="${drill_tmp}/reb${run}" \
   "${build_dir}/bench/hotkey_skew" rebalance > stdout.txt)
done
diff "${drill_tmp}/reb1/stdout.txt" "${drill_tmp}/reb2/stdout.txt" \
  || { echo "rebalance ablation stdout is not deterministic"; exit 1; }
diff "${drill_tmp}/reb1/ablation_rebalance.csv" \
     "${drill_tmp}/reb2/ablation_rebalance.csv" \
  || { echo "rebalance ablation CSV is not deterministic"; exit 1; }
echo "rebalance ablation determinism gate: OK"

# Chaos scenario suite: runs the six open-loop/chaos scenarios (flash
# crowd, diurnal wave, rolling restart, zone partition, lost-update
# LWW-vs-DVV ablation, metastability ablation) and exits non-zero unless
# every gate passes — including the causal gate: LWW must lose acked
# updates under partition+race and DVV must lose exactly zero. Two runs
# must also agree byte for byte — the overload defenses and the whole
# causal path (dot minting, sibling joins, causal repair/hints) are all
# on the deterministic surface.
for run in 1 2; do
  mkdir -p "${drill_tmp}/ss${run}"
  SEDNA_OUT_DIR="${drill_tmp}/ss${run}" \
    "${build_dir}/bench/scenario_suite" > "${drill_tmp}/ss${run}/stdout.txt"
done
diff "${drill_tmp}/ss1/stdout.txt" "${drill_tmp}/ss2/stdout.txt" \
  || { echo "scenario_suite stdout is not deterministic"; exit 1; }
diff "${drill_tmp}/ss1/scenario_suite.csv" \
     "${drill_tmp}/ss2/scenario_suite.csv" \
  || { echo "scenario_suite goodput CSV is not deterministic"; exit 1; }
diff "${drill_tmp}/ss1/scenario_suite_metrics.prom" \
     "${drill_tmp}/ss2/scenario_suite_metrics.prom" \
  || { echo "scenario_suite metrics dump is not deterministic"; exit 1; }
diff "${drill_tmp}/ss1/ablation_dvv.csv" \
     "${drill_tmp}/ss2/ablation_dvv.csv" \
  || { echo "lost-update DVV ablation CSV is not deterministic"; exit 1; }
# Consistency-auditor surfaces: the t-visibility curve and the flight
# recorder's incident CSV ride the same determinism contract (stdout
# already covers the rendered incident timeline).
diff "${drill_tmp}/ss1/scenario_consistency.csv" \
     "${drill_tmp}/ss2/scenario_consistency.csv" \
  || { echo "scenario visibility CSV is not deterministic"; exit 1; }
diff "${drill_tmp}/ss1/scenario_incidents.csv" \
     "${drill_tmp}/ss2/scenario_incidents.csv" \
  || { echo "scenario incident CSV is not deterministic"; exit 1; }
# Both exposition dumps must lint: the overload cluster's and the causal
# cluster's (the latter carries the new sibling/conflict families).
"${build_dir}/tests/promlint" "${drill_tmp}/ss1/scenario_suite_metrics.prom" \
                              "${drill_tmp}/ss1/ablation_dvv_metrics.prom"
echo "scenario suite determinism gate: OK"

"${repo_root}/tests/run_sanitized.sh" "$@"
