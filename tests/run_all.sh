#!/usr/bin/env bash
# One-shot gate: builds the regular tree, runs the whole ctest suite, then
# repeats the run under AddressSanitizer + UBSan via run_sanitized.sh.
# Usage: tests/run_all.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "$(nproc)"

(cd "${build_dir}" && ctest --output-on-failure -j "$(nproc)" "$@")

"${repo_root}/tests/run_sanitized.sh" "$@"
