// Span-tree well-formedness property test (observability PR satellite):
// drive a miniature failure drill — crash, degraded traffic, recovery,
// hinted-handoff replay — with tracing on across five seeds, then assert
// structural invariants over every retained span:
//
//   * after quiescence, every begun span has ended;
//   * every non-root span's parent exists in the same trace and was
//     allocated before it (parent id < child id);
//   * no cycles (implied by the id ordering, checked explicitly by
//     walking parents to the root);
//   * a child never starts before its parent;
//   * child intervals nest inside their parent's interval, EXCEPT spans
//     that legitimately outlive their parent: RPC spans whose timeout
//     fires after the caller settled at quorum, host cpu spans that
//     finish processing a reply after the enclosing rpc span closed at
//     delivery, and cause-stage spans (retry/repair/zk/migration/
//     hint_replay) that track asynchronous follow-up work such as read
//     repair finishing after the coordinator already answered;
//   * exactly one root per trace.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cluster/sedna_cluster.h"
#include "common/critical_path.h"
#include "common/trace.h"

namespace sedna::cluster {
namespace {

/// Spans that may end after their parent: an RPC kept open until its
/// timeout even though the caller settled, host cpu spans whose
/// queue+service work completes after the span that stamped the message
/// already closed (reply delivery closes the rpc span before the
/// caller finishes processing the reply), or asynchronous cause-stage
/// work (read repair, suspicion probes, hint replay) that a handler
/// kicked off and did not wait for.
bool may_outlive_parent(const Span& s) {
  return s.name.rfind("rpc.", 0) == 0 || s.name.rfind("cpu.", 0) == 0 ||
         inherits_to_children(s.stage);
}

void check_spans(const std::vector<Span>& spans, std::uint64_t seed) {
  std::map<SpanId, const Span*> by_id;
  std::map<TraceId, int> roots;
  for (const Span& s : spans) by_id[s.id] = &s;

  for (const Span& s : spans) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " span " +
                 std::to_string(s.id) + " (" + s.name + ")");
    // Quiesced: nothing is still open.
    EXPECT_TRUE(s.finished());
    EXPECT_LE(s.start_us, s.end_us);

    if (s.parent == 0) {
      ++roots[s.trace_id];
      continue;
    }
    const auto it = by_id.find(s.parent);
    ASSERT_NE(it, by_id.end()) << "dangling parent " << s.parent;
    const Span& p = *it->second;
    EXPECT_EQ(p.trace_id, s.trace_id) << "parent in a different trace";
    EXPECT_LT(p.id, s.id) << "child allocated before its parent";
    EXPECT_GE(s.start_us, p.start_us) << "child starts before parent";
    if (!may_outlive_parent(s)) {
      EXPECT_LE(s.end_us, p.end_us)
          << "span escapes parent '" << p.name << "' interval ["
          << p.start_us << "," << p.end_us << "]";
    }

    // Walk to the root: terminates (no cycle) and stays in-trace.
    const Span* cur = &s;
    int hops = 0;
    while (cur->parent != 0) {
      const auto pit = by_id.find(cur->parent);
      ASSERT_NE(pit, by_id.end());
      cur = pit->second;
      ASSERT_LT(++hops, 64) << "parent chain too deep or cyclic";
    }
    EXPECT_EQ(cur->trace_id, s.trace_id);
  }
  for (const auto& [trace, count] : roots) {
    EXPECT_EQ(count, 1) << "trace " << trace << " has " << count
                        << " roots";
  }
}

TEST(SpanWellFormedness, HoldsAcrossFailureDrillUnderFiveSeeds) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SednaClusterConfig cfg;
    cfg.zk_members = 3;
    cfg.data_nodes = 6;
    cfg.cluster.total_vnodes = 128;
    cfg.seed = seed;
    SednaCluster cluster(cfg);
    ASSERT_TRUE(cluster.boot().ok());
    auto& client = cluster.make_client();

    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          cluster.write_latest(client, "k" + std::to_string(i), "v").ok());
    }

    Tracer& tracer = cluster.sim().tracer();
    tracer.set_enabled(true);

    // Kill window: degraded writes queue hints, degraded reads burn the
    // client timeout against the dead coordinator and retry.
    cluster.crash_node(2);
    for (int i = 0; i < 20; ++i) {
      cluster.write_latest(client, "hint-" + std::to_string(i), "v");
    }
    for (int i = 0; i < 40; ++i) {
      cluster.read_latest(client, "k" + std::to_string(i));
    }
    // Session expiry, read-triggered recovery, read repair.
    cluster.run_for(sim_sec(4));
    for (int i = 0; i < 40; ++i) {
      cluster.read_latest(client, "k" + std::to_string(i));
    }
    // Restart: hinted handoff replays the kill-window backlog.
    cluster.restart_node(2);
    cluster.run_for(sim_sec(6));

    // Stop opening spans, then drain everything in flight (the longest
    // straggler is an RPC timeout) so "every begun span ends" can hold.
    tracer.set_enabled(false);
    cluster.run_for(sim_sec(10));

    check_spans(tracer.spans(), seed);
    EXPECT_GT(tracer.retained_traces(), 0u);
  }
}

}  // namespace
}  // namespace sedna::cluster
