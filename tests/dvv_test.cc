// DVV algebra property tests (store/dvv.h): the semilattice join laws
// the repair subsystem relies on (commutative, associative, idempotent),
// dot compaction under contextual writes, coordinator update semantics,
// exact wire round-trips — plus the deterministic equal-timestamp
// tie-break that keeps write_latest/write_all replicas convergent under
// reversed delivery order.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "store/dvv.h"
#include "store/local_store.h"

namespace sedna::store {
namespace {

CausalRecord joined(CausalRecord a, const CausalRecord& b) {
  a.merge(b);
  return a;
}

/// Deterministic pseudo-random causal histories: four replica copies of
/// one key evolve by coordinator updates (half contextual, half blind —
/// blind puts are what mint true concurrency) and pairwise syncs, all
/// driven by one seeded engine. Every record this produces is reachable
/// in a real cluster, so the join laws are tested on states that matter.
std::vector<CausalRecord> random_history(std::uint64_t seed, int steps) {
  std::mt19937_64 rng(seed);
  std::vector<CausalRecord> reps(4);
  for (int s = 0; s < steps; ++s) {
    const std::size_t i = rng() % reps.size();
    if (rng() % 3 == 0) {
      reps[i].merge(reps[rng() % reps.size()]);
    } else {
      VersionVector ctx;
      if (rng() % 2 == 0) ctx = reps[i].clock;  // read-modify-write
      reps[i].update(ctx, "v" + std::to_string(s),
                     1000 + static_cast<Timestamp>(rng() % 50), 0,
                     static_cast<NodeId>(100 + i));
    }
  }
  return reps;
}

TEST(DvvAlgebra, MergeIsCommutative) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto reps = random_history(seed, 50);
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = 0; j < reps.size(); ++j) {
        EXPECT_EQ(joined(reps[i], reps[j]), joined(reps[j], reps[i]))
            << "seed " << seed << " pair " << i << "," << j;
      }
    }
  }
}

TEST(DvvAlgebra, MergeIsAssociative) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto reps = random_history(seed, 50);
    const CausalRecord& a = reps[0];
    const CausalRecord& b = reps[1];
    const CausalRecord& c = reps[2];
    EXPECT_EQ(joined(joined(a, b), c), joined(a, joined(b, c)))
        << "seed " << seed;
  }
}

TEST(DvvAlgebra, MergeIsIdempotent) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto reps = random_history(seed, 50);
    for (const CausalRecord& r : reps) {
      CausalRecord twice = r;
      EXPECT_FALSE(twice.merge(r)) << "self-join reported a change";
      EXPECT_EQ(twice, r);
    }
    // Re-delivery after a join is also a no-op (hint replay, AE pushes).
    CausalRecord ab = joined(reps[0], reps[1]);
    EXPECT_FALSE(ab.merge(reps[1]));
    EXPECT_FALSE(ab.merge(reps[0]));
  }
}

TEST(DvvAlgebra, ContextualWritesCompactDots) {
  CausalRecord rec;
  for (int i = 0; i < 99; ++i) {
    // Every write carries the clock it read — causally supersedes all.
    rec.update(rec.clock, "v" + std::to_string(i),
               1000 + static_cast<Timestamp>(i), 0,
               static_cast<NodeId>(100 + i % 3));
  }
  EXPECT_EQ(rec.siblings.size(), 1u);
  EXPECT_EQ(rec.siblings[0].value, "v98");
  // The clock stays O(writers), not O(writes), and loses no events.
  EXPECT_EQ(rec.clock.entries().size(), 3u);
  EXPECT_EQ(rec.clock.get(100) + rec.clock.get(101) + rec.clock.get(102),
            99u);
}

TEST(DvvAlgebra, ConcurrentWritesSurviveAsSiblings) {
  CausalRecord a, b;
  a.update({}, "left", 5, 0, 1);
  b.update({}, "right", 5, 0, 2);
  const CausalRecord j = joined(a, b);
  ASSERT_EQ(j.siblings.size(), 2u);

  // A writer that read the joined state supersedes both siblings...
  CausalRecord c = j;
  c.update(j.clock, "merged", 6, 0, 3);
  ASSERT_EQ(c.siblings.size(), 1u);
  EXPECT_EQ(c.siblings[0].value, "merged");
  // ...and re-delivering the stale halves cannot resurrect them: their
  // dots are covered by the clock without being retained.
  EXPECT_FALSE(c.merge(a));
  EXPECT_FALSE(c.merge(b));
  EXPECT_EQ(c.siblings.size(), 1u);
}

TEST(DvvAlgebra, WinnerIsDeterministicAcrossSiblingOrder) {
  CausalRecord a, b;
  a.update({}, "alpha", 7, 0, 1);
  b.update({}, "omega", 7, 0, 2);
  const CausalRecord ab = joined(a, b);
  const CausalRecord ba = joined(b, a);
  ASSERT_NE(ab.winner(), nullptr);
  EXPECT_EQ(ab.winner()->value, ba.winner()->value);
  EXPECT_EQ(ab.digest(), ba.digest());
}

TEST(DvvAlgebra, WireRoundTripIsExact) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const CausalRecord& r : random_history(seed, 60)) {
      EXPECT_EQ(CausalRecord::decode_string(r.encode_string()), r);
    }
  }
}

TEST(DvvAlgebra, DecodeRejectsUnsortedClock) {
  BinaryWriter w;
  w.put_u32(2);  // two clock entries, deliberately out of order
  w.put_u32(5);
  w.put_u64(1);
  w.put_u32(3);
  w.put_u64(1);
  w.put_u32(0);  // no siblings
  const std::string payload = std::move(w).take();
  EXPECT_TRUE(CausalRecord::decode_string(payload).empty());
}

// ---- store-level causal path ---------------------------------------------------

TEST(DvvStore, BlindPutsRetainSiblingsAndContextualPutCollapses) {
  LocalStore store;
  auto r1 = store.write_causal("k", {}, "one", 10, 0, 1);
  ASSERT_TRUE(r1.ok());
  auto r2 = store.write_causal("k", {}, "two", 11, 0, 2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->siblings.size(), 2u);
  EXPECT_EQ(store.stats().siblings, 1u);  // one beyond the first

  // Legacy mirror: read_latest sees the deterministic winner.
  auto latest = store.read_latest("k");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->value, "two");

  auto r3 = store.write_causal("k", r2->clock, "resolved", 12, 0, 1);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->siblings.size(), 1u);
  EXPECT_EQ(store.stats().siblings, 0u);
}

TEST(DvvStore, MergeCausalIsIdempotentAndCounted) {
  LocalStore a, b;
  auto ra = a.write_causal("k", {}, "from-a", 5, 0, 1);
  ASSERT_TRUE(ra.ok());
  bool changed = false;
  ASSERT_TRUE(b.merge_causal("k", ra.value(), &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_EQ(b.stats().dvv_merges, 1u);
  ASSERT_TRUE(b.merge_causal("k", ra.value(), &changed).ok());
  EXPECT_FALSE(changed);
  EXPECT_EQ(b.stats().dvv_merges, 1u);
  EXPECT_EQ(b.read_causal("k").value(), a.read_causal("k").value());
}

// ---- deterministic equal-timestamp tie-break -----------------------------------
//
// Arrival order must never decide an equal-timestamp race, or replicas
// that saw the same two writes in different orders would permanently
// diverge (the bug DVVs exist to make structurally impossible — but the
// legacy LWW path must converge too).

TEST(LwwTieBreak, WriteLatestConvergesUnderReversedDelivery) {
  const Timestamp ts = 777;
  LocalStore a, b;
  (void)a.write_latest("k", "alpha", ts);
  (void)a.write_latest("k", "omega", ts);
  (void)b.write_latest("k", "omega", ts);
  (void)b.write_latest("k", "alpha", ts);
  ASSERT_TRUE(a.read_latest("k").ok());
  EXPECT_EQ(a.read_latest("k")->value, b.read_latest("k")->value);
}

TEST(LwwTieBreak, AllDeliveryPermutationsAgree) {
  const Timestamp ts = 42;
  std::vector<std::string> vals = {"aa", "bb", "cc"};
  std::sort(vals.begin(), vals.end());
  std::string converged;
  do {
    LocalStore s;
    for (const auto& v : vals) (void)s.write_latest("k", v, ts);
    const auto got = s.read_latest("k");
    ASSERT_TRUE(got.ok());
    if (converged.empty()) {
      converged = got->value;
    } else {
      EXPECT_EQ(got->value, converged);
    }
  } while (std::next_permutation(vals.begin(), vals.end()));
}

TEST(LwwTieBreak, WriteAllConvergesUnderReversedDelivery) {
  const Timestamp ts = 9;
  LocalStore a, b;
  (void)a.write_all("k", 7, "x", ts);
  (void)a.write_all("k", 7, "y", ts);
  (void)b.write_all("k", 7, "y", ts);
  (void)b.write_all("k", 7, "x", ts);
  const auto la = a.read_all("k");
  const auto lb = b.read_all("k");
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());
  ASSERT_EQ(la->size(), 1u);
  ASSERT_EQ(lb->size(), 1u);
  EXPECT_EQ(la->front().value, lb->front().value);
}

}  // namespace
}  // namespace sedna::store
