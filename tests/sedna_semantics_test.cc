// Cross-replica semantics of the Sedna data model: flags propagation,
// timestamp ordering across writers, divergence repair, and the exact
// client-visible outcome vocabulary of Section III.F.
#include <gtest/gtest.h>

#include "cluster/sedna_cluster.h"

namespace sedna::cluster {
namespace {

SednaClusterConfig small_config() {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 6;
  cfg.cluster.total_vnodes = 128;
  return cfg;
}

TEST(Semantics, TimestampsTotallyOrderAcrossWriters) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& c1 = cluster.make_client();
  auto& c2 = cluster.make_client();

  // Alternate writers; every acknowledged write must carry a timestamp
  // strictly greater than the previous read's (same virtual clock, writer
  // id in the tie-break bits).
  Timestamp prev = 0;
  for (int i = 0; i < 20; ++i) {
    auto& writer = (i % 2 == 0) ? c1 : c2;
    ASSERT_TRUE(cluster.write_latest(writer, "ordered",
                                     "v" + std::to_string(i)).ok());
    auto got = cluster.read_latest(c1, "ordered");
    ASSERT_TRUE(got.ok());
    EXPECT_GT(got->ts, prev);
    prev = got->ts;
    EXPECT_EQ(got->value, "v" + std::to_string(i));
  }
}

TEST(Semantics, DirectStaleWriteToReplicaIsRepairedOnRead) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "diverge", "fresh").ok());
  cluster.run_for(sim_ms(20));

  // Corrupt one replica out-of-band with an *older* value (simulating a
  // replica that missed the update).
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("diverge");
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == replicas[1]) {
      auto& store = cluster.node(i).local_store();
      store.del("diverge");
      store.write_latest("diverge", "stale-ghost", 1);
    }
  }

  // Reads keep returning the fresh value (quorum outvotes the ghost)...
  for (int round = 0; round < 3; ++round) {
    auto got = cluster.read_latest(client, "diverge");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->value, "fresh");
    cluster.run_for(sim_ms(50));
  }
  // ...and read repair overwrote the ghost everywhere.
  std::size_t fresh_copies = 0;
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    auto got = cluster.node(i).local_store().read_latest("diverge");
    if (got.ok()) {
      EXPECT_EQ(got->value, "fresh");
      ++fresh_copies;
    }
  }
  EXPECT_EQ(fresh_copies, 3u);
}

TEST(Semantics, ReadAllMergesDivergentValueLists) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_all(client, "merge", "base").ok());
  cluster.run_for(sim_ms(20));

  // Plant an extra source element on a single replica only: the merged
  // read must still surface it (union semantics, freshest per source).
  const auto replicas =
      cluster.node(0).metadata().table().replicas_for_key("merge");
  for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
    if (cluster.node(i).id() == replicas[0]) {
      cluster.node(i).local_store().write_all("merge", 777, "only-here",
                                              make_timestamp(1, 1));
    }
  }
  auto merged = cluster.read_all(client, "merge");
  ASSERT_TRUE(merged.ok());
  bool found = false;
  for (const auto& sv : merged.value()) {
    if (sv.source == 777) {
      found = true;
      EXPECT_EQ(sv.value, "only-here");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Semantics, WriteAllThenWriteLatestCoexist) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_all(client, "both", "listed").ok());
  ASSERT_TRUE(cluster.write_latest(client, "both", "single").ok());
  auto latest = cluster.read_latest(client, "both");
  auto list = cluster.read_all(client, "both");
  ASSERT_TRUE(latest.ok());
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(latest->value, "single");
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].value, "listed");
}

TEST(Semantics, LargeValuesRoundTrip) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const std::string big(64 * 1024, 'x');  // far beyond the paper's 20 B
  ASSERT_TRUE(cluster.write_latest(client, "big", big).ok());
  auto got = cluster.read_latest(client, "big");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value.size(), big.size());
  EXPECT_EQ(got->value, big);
}

TEST(Semantics, BinaryKeysAndValuesSurviveTheWire) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  const std::string key("bin\0key\xff", 8);
  const std::string value("\x00\x01\x02\xfe\xff", 5);
  ASSERT_TRUE(cluster.write_latest(client, key, value).ok());
  auto got = cluster.read_latest(client, key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, value);
}

TEST(Semantics, EmptyValueIsStorable) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  auto& client = cluster.make_client();
  ASSERT_TRUE(cluster.write_latest(client, "empty", "").ok());
  auto got = cluster.read_latest(client, "empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->value.empty());
}

TEST(Semantics, ManyClientsManyKeysConsistentUnderInterleaving) {
  SednaCluster cluster(small_config());
  ASSERT_TRUE(cluster.boot().ok());
  std::vector<SednaClient*> clients;
  for (int c = 0; c < 4; ++c) clients.push_back(&cluster.make_client());

  // Interleaved async writes from all clients, then settle and verify
  // every key converged to a single cluster-wide winner.
  int done = 0;
  for (int round = 0; round < 5; ++round) {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      for (int k = 0; k < 10; ++k) {
        clients[c]->write_latest(
            "ik" + std::to_string(k),
            "c" + std::to_string(c) + "r" + std::to_string(round),
            [&done](const Status&) { ++done; });
      }
    }
  }
  cluster.run_until([&] { return done == 5 * 4 * 10; });
  cluster.run_for(sim_ms(200));

  for (int k = 0; k < 10; ++k) {
    const std::string key = "ik" + std::to_string(k);
    std::optional<Timestamp> winner;
    for (std::size_t i = 0; i < cluster.data_node_count(); ++i) {
      auto got = cluster.node(i).local_store().read_latest(key);
      if (!got.ok()) continue;
      if (!winner.has_value()) {
        winner = got->ts;
      } else {
        EXPECT_EQ(got->ts, *winner) << key;
      }
    }
    EXPECT_TRUE(winner.has_value());
  }
}

}  // namespace
}  // namespace sedna::cluster
