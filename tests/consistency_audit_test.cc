// Tests for the consistency auditor: staleness-bound math, per-vnode
// replication-lag rows and their delta semantics, t-visibility probe
// bookkeeping, the trailing-optional wire sections (ReadReply audit
// trailer, RealNodeLoad lag rows), the ZooKeeper lag gossip end to end,
// the client-side staleness-bound wiring, and the alerts_json export.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/admin.h"
#include "cluster/consistency_auditor.h"
#include "cluster/protocol.h"
#include "cluster/sedna_cluster.h"
#include "ring/imbalance.h"

namespace sedna::cluster {
namespace {

// ---- staleness math ------------------------------------------------------------

TEST(ConsistencyAuditor, StaleServeBoundIsTimeSinceLastFullQuorum) {
  MetricRegistry metrics;
  ConsistencyAuditor aud({}, metrics);
  aud.on_full_quorum(7, 1000);
  EXPECT_EQ(aud.on_stale_serve(7, 5000), 4000u);
  // Same-instant stale serve: the bound floors at 1 so a measured bound
  // is always distinguishable from "not measured" (0).
  aud.on_full_quorum(7, 6000);
  EXPECT_EQ(aud.on_stale_serve(7, 6000), 1u);
  EXPECT_EQ(metrics.counter("audit.stale_serves").value(), 2u);
  EXPECT_EQ(metrics.histogram("audit.staleness_bound_us").count(), 2u);
}

TEST(ConsistencyAuditor, ReadFinalRecordsVersionAndTimeLag) {
  MetricRegistry metrics;
  ConsistencyAuditor aud({}, metrics);

  // Served the freshest copy: no lag, not behind.
  ReadAuditSample fresh;
  fresh.vnode = 3;
  fresh.served_ts = make_timestamp(2000, 1);
  fresh.positives = 3;
  fresh.newer = 0;
  fresh.freshest_ts = fresh.served_ts;
  fresh.oldest_ts = make_timestamp(1500, 1);
  fresh.confirm_lag_us = 80;
  aud.on_read_final(fresh);
  EXPECT_EQ(metrics.counter("audit.reads_audited").value(), 1u);
  EXPECT_EQ(metrics.counter("audit.reads_behind").value(), 0u);
  EXPECT_EQ(metrics.histogram("audit.fresh_read_lag_us").max(), 0);
  EXPECT_EQ(metrics.histogram("audit.confirm_lag_us").max(), 80);
  // Healthy vnode lag = freshest-vs-oldest replica spread.
  EXPECT_EQ(aud.max_replication_lag_us(9000), 500u);

  // A replica held something 700 µs newer than the served value.
  ReadAuditSample behind;
  behind.vnode = 3;
  behind.served_ts = make_timestamp(2000, 1);
  behind.stale = true;
  behind.positives = 2;
  behind.newer = 1;
  behind.freshest_ts = make_timestamp(2700, 4);
  behind.oldest_ts = behind.served_ts;
  aud.on_read_final(behind);
  EXPECT_EQ(metrics.counter("audit.reads_behind").value(), 1u);
  EXPECT_EQ(metrics.histogram("audit.stale_read_lag_us").max(), 700);
  EXPECT_EQ(metrics.histogram("audit.version_lag").max(), 1);
}

TEST(ConsistencyAuditor, EmptyReadsOnlyCountExposure) {
  MetricRegistry metrics;
  ConsistencyAuditor aud({}, metrics);
  ReadAuditSample miss;
  miss.vnode = 1;
  miss.positives = 0;
  miss.confirm_lag_us = 250;
  aud.on_read_final(miss);
  EXPECT_EQ(metrics.counter("audit.reads_audited").value(), 1u);
  EXPECT_EQ(metrics.histogram("audit.confirm_lag_us").count(), 1u);
  // No value to compare against: no lag histograms, no vnode row.
  EXPECT_EQ(metrics.histogram("audit.version_lag").count(), 0u);
  EXPECT_EQ(aud.max_replication_lag_us(1000), 0u);
}

TEST(ConsistencyAuditor, StaleVnodeLagGrowsUntilFullQuorum) {
  MetricRegistry metrics;
  ConsistencyAuditor aud({}, metrics);
  aud.on_full_quorum(5, 1000);
  aud.on_stale_serve(5, 2000);
  // While serving stale the lag is a clock: it grows with `now`.
  EXPECT_EQ(aud.max_replication_lag_us(3000), 2000u);
  EXPECT_EQ(aud.max_replication_lag_us(9000), 8000u);
  // A full-quorum read snaps it back to the (zero) replica spread.
  aud.on_full_quorum(5, 9500);
  EXPECT_EQ(aud.max_replication_lag_us(10000), 0u);
}

TEST(ConsistencyAuditor, LagRowsReportStaleServeDeltas) {
  MetricRegistry metrics;
  ConsistencyAuditor aud({}, metrics);
  aud.on_full_quorum(2, 1000);
  aud.on_stale_serve(2, 4000);
  aud.on_stale_serve(2, 4500);

  auto rows = aud.lag_rows(5000);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].vnode, 2u);
  EXPECT_EQ(rows[0].lag_us, 4000u);
  EXPECT_EQ(rows[0].stale_serves, 2u);

  // Next window: no new stale serves — the delta resets but the vnode is
  // still serving stale, so it keeps its (grown) lag row.
  rows = aud.lag_rows(6000);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].lag_us, 5000u);
  EXPECT_EQ(rows[0].stale_serves, 0u);

  // Healed and quiet: nothing to say, no row.
  aud.on_full_quorum(2, 6500);
  EXPECT_TRUE(aud.lag_rows(7000).empty());
}

// ---- t-visibility probe bookkeeping --------------------------------------------

TEST(ConsistencyAuditor, DeterministicWriteSampling) {
  MetricRegistry metrics;
  ConsistencyAuditorConfig cfg;
  cfg.probe_sample_every = 4;
  ConsistencyAuditor aud(cfg, metrics);
  int probed = 0;
  for (int i = 0; i < 12; ++i) {
    if (aud.should_probe()) ++probed;
  }
  EXPECT_EQ(probed, 3);

  ConsistencyAuditorConfig off;
  off.probe_sample_every = 0;
  ConsistencyAuditor quiet(off, metrics);
  EXPECT_FALSE(quiet.should_probe());
}

TEST(ConsistencyAuditor, OffsetStatsSeparateUnreachableFromInvisible) {
  MetricRegistry metrics;
  ConsistencyAuditorConfig cfg;
  cfg.probe_offsets = {sim_ms(5), sim_ms(50)};
  ConsistencyAuditor aud(cfg, metrics);
  aud.on_probe_fire(0);
  aud.on_probe_check(0, true, true);
  aud.on_probe_check(0, true, false);
  aud.on_probe_check(0, false, false);  // timed out: never a violation
  ASSERT_EQ(aud.offset_stats().size(), 2u);
  EXPECT_EQ(aud.offset_stats()[0].probes, 1u);
  EXPECT_EQ(aud.offset_stats()[0].checked, 2u);
  EXPECT_EQ(aud.offset_stats()[0].visible, 1u);
  EXPECT_EQ(aud.offset_stats()[0].unreachable, 1u);
  EXPECT_EQ(aud.offset_stats()[1].probes, 0u);
  // Out-of-range offsets are ignored, not UB.
  aud.on_probe_fire(9);
  aud.on_probe_check(9, true, true);
  EXPECT_EQ(metrics.counter("audit.probe_rounds").value(), 1u);
}

TEST(ConsistencyAuditor, ViolationRecordsAreBoundedButCounted) {
  MetricRegistry metrics;
  ConsistencyAuditorConfig cfg;
  cfg.max_violations = 2;
  ConsistencyAuditor aud(cfg, metrics);
  for (int i = 0; i < 5; ++i) {
    aud.on_violation(100 * i, 1000 + i, "k" + std::to_string(i), 101);
  }
  EXPECT_EQ(aud.violations().size(), 2u);
  EXPECT_EQ(aud.violations()[0].key, "k0");
  EXPECT_EQ(aud.violations()[1].acked_at, 100u);
  EXPECT_EQ(metrics.counter("audit.visibility_violations").value(), 5u);
}

// ---- wire format ---------------------------------------------------------------

TEST(AuditWire, ReadReplyAuditTrailerRoundTrips) {
  ReadReply rep;
  rep.has_latest = true;
  rep.latest = {"v", 42, 0};
  rep.stale = true;
  rep.staleness_us = 123456;
  auto back = ReadReply::decode(rep.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->stale);
  EXPECT_EQ(back->staleness_us, 123456u);
  EXPECT_FALSE(back->has_causal);
}

TEST(AuditWire, ReadReplyAuditAndCausalTrailersCompose) {
  ReadReply rep;
  rep.has_latest = true;
  rep.latest = {"v", 42, 0};
  rep.staleness_us = 7;
  rep.has_causal = true;
  rep.causal.clock.bump(3);
  store::Sibling sib;
  sib.value = "sib";
  sib.ts = 99;
  sib.dot = store::Dot{3, 1};
  rep.causal.siblings.push_back(sib);
  auto back = ReadReply::decode(rep.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->staleness_us, 7u);
  ASSERT_TRUE(back->has_causal);
  ASSERT_EQ(back->causal.siblings.size(), 1u);
  EXPECT_EQ(back->causal.siblings[0].value, "sib");
}

TEST(AuditWire, PlainReplyStaysByteIdenticalWithLegacyLayout) {
  // The PR 7 rule: payload size feeds the network delay model, so an
  // audit-off reply must not gain a single byte. A plain reply must end
  // exactly at the stale flag — no trailer tag at all.
  ReadReply rep;
  rep.has_latest = true;
  rep.latest = {"value", 77, 1};
  const std::string bytes = rep.encode();
  ReadReply tagged = rep;
  tagged.staleness_us = 1;
  EXPECT_EQ(tagged.encode().size(), bytes.size() + 1 + 8);
  auto back = ReadReply::decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->staleness_us, 0u);
  EXPECT_FALSE(back->has_causal);
}

TEST(AuditWire, ReadReplyRejectsBadTrailerTag) {
  ReadReply rep;
  rep.has_latest = true;
  rep.latest = {"v", 1, 0};
  std::string bytes = rep.encode();
  bytes.push_back('\0');  // tag 0: trailer present but empty
  EXPECT_FALSE(ReadReply::decode(bytes).ok());
  bytes.back() = '\x40';  // unknown bit
  EXPECT_FALSE(ReadReply::decode(bytes).ok());
}

TEST(AuditWire, LoadRowLagSectionIsTrailingOptional) {
  ring::RealNodeLoad row;
  row.node = 104;
  row.vnode_count = 20;
  row.reads = 5;
  row.vnodes.push_back(ring::VnodeLoadRow{9, 100, 5, 0, 0});
  const std::string legacy = row.encode();

  ring::RealNodeLoad with_lags = row;
  with_lags.lags.push_back(ring::VnodeLagRow{9, 2500, 3});
  with_lags.lags.push_back(ring::VnodeLagRow{12, 80, 0});
  const std::string extended = with_lags.encode();
  // Auditing off ⇒ empty lags ⇒ byte-identical with the legacy layout.
  EXPECT_GT(extended.size(), legacy.size());

  auto old_back = ring::RealNodeLoad::decode(legacy);
  ASSERT_TRUE(old_back.ok());
  EXPECT_TRUE(old_back->lags.empty());

  auto new_back = ring::RealNodeLoad::decode(extended);
  ASSERT_TRUE(new_back.ok());
  ASSERT_EQ(new_back->lags.size(), 2u);
  EXPECT_EQ(new_back->lags[0], with_lags.lags[0]);
  EXPECT_EQ(new_back->lags[1], with_lags.lags[1]);
}

// ---- end to end: gossip, client bound, alerts_json -----------------------------

TEST(AuditEndToEnd, StaleBoundsReachClientAndLagRowsReachZk) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 3;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = 77;
  cfg.node_template.audit.enabled = true;
  cfg.node_template.audit.probe_sample_every = 0;
  cfg.node_template.degraded_reads = true;
  cfg.node_template.load_report_interval = sim_ms(200);
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  cluster.enable_monitor();
  auto& client = cluster.make_client();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "au-" + std::to_string(i),
                                     "v" + std::to_string(i)).ok());
  }

  // Isolate one data node from its peers (clients still reach it): with
  // N = 3 over 3 nodes, every key it coordinates has exactly one
  // reachable replica — its own — so reads there settle degraded.
  const std::vector<NodeId> ids = cluster.data_ids();
  cluster.network().partition(ids[0], ids[1]);
  cluster.network().partition(ids[0], ids[2]);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 30; ++i) {
      (void)cluster.read_latest(client, "au-" + std::to_string(i));
    }
  }

  std::uint64_t stale_serves = 0;
  for (std::size_t n = 0; n < cluster.data_node_count(); ++n) {
    stale_serves +=
        cluster.node(n).metrics().counter("audit.stale_serves").value();
  }
  ASSERT_GT(stale_serves, 0u);

  // Every stale serve carried a measured bound to the client; none of
  // them arrived as a bare "stale" flag.
  EXPECT_EQ(client.metrics().histogram("client.staleness_bound_us").count(),
            stale_serves);
  EXPECT_EQ(client.metrics().counter("client.stale_unbounded").value(), 0u);
  EXPECT_GE(client.metrics().histogram("client.staleness_bound_us").min(),
            1);

  // Let a load report fire and check the lag gossip landed in ZooKeeper:
  // the isolated node's row must decode with a non-empty lag section.
  cluster.run_for(sim_ms(500));
  const auto& tree = cluster.zk_member(0).tree();
  bool saw_lag_row = false;
  for (std::size_t n = 0; n < cluster.data_node_count(); ++n) {
    auto got = tree.get(std::string(kZkRealNodes) + "/load-" +
                        std::to_string(cluster.node(n).id()));
    if (!got.ok()) continue;
    auto row = ring::RealNodeLoad::decode(got->first);
    ASSERT_TRUE(row.ok());
    for (const auto& lag : row->lags) {
      if (lag.lag_us > 0 || lag.stale_serves > 0) saw_lag_row = true;
    }
  }
  EXPECT_TRUE(saw_lag_row);

  // The monitor picked the lag up as a gauge series.
  ClusterInspector inspector(cluster);
  EXPECT_NE(inspector.timeseries_csv().find("replication_lag_max_us"),
            std::string::npos);
}

TEST(AuditEndToEnd, AlertsJsonIsWellFormedAndListsStalenessBudget) {
  SednaClusterConfig cfg;
  cfg.zk_members = 3;
  cfg.data_nodes = 4;
  cfg.cluster.total_vnodes = 64;
  cfg.seed = 5;
  cfg.node_template.audit.enabled = true;
  SednaCluster cluster(cfg);
  ASSERT_TRUE(cluster.boot().ok());
  cluster.enable_monitor();
  auto& client = cluster.make_client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.write_latest(client, "aj-" + std::to_string(i),
                                     "v").ok());
  }
  cluster.run_for(sim_sec(1));

  ClusterInspector inspector(cluster);
  const std::string json = inspector.alerts_json();
  // Schema shell.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"rules\":["), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  // Every rule row carries the full schema, including the new budget
  // rule watching the auditor's lag gauge.
  EXPECT_NE(json.find("\"name\":\"staleness-budget\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":\"replication_lag_max_us\""),
            std::string::npos);
  for (const char* field :
       {"\"severity\":", "\"threshold\":", "\"state\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // A healthy run: nothing firing.
  EXPECT_EQ(json.find("\"state\":\"firing\""), std::string::npos);
  // Balanced quoting/braces — cheap well-formedness guard.
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // Without a monitor the export keeps its shape (empty arrays).
  SednaCluster bare(cfg);
  ASSERT_TRUE(bare.boot().ok());
  EXPECT_EQ(ClusterInspector(bare).alerts_json(),
            "{\"rules\":[],\"events\":[]}");
}

}  // namespace
}  // namespace sedna::cluster
